//! Regenerate **Figures 8 and 11**: scheduling the running example with
//! the Unifiable-ops technique vs GRiP, showing the candidate sets next to
//! each node and the successful moves in order.
//!
//! The paper's drawing shows the program graph after each successful move;
//! here we print the initial per-node sets (Unifiable-ops vs Moveable-ops
//! — the sets whose maintenance cost §3.1 compares), the move sequence,
//! and the final graphs.

#![forbid(unsafe_code)]

use grip_analysis::{Ddg, RankTable};
use grip_core::{schedule_region, GripConfig, Resources, TraceEvent};
use grip_ir::{Graph, NodeId, OpId, OpKind, Operand, ProgramBuilder, Value};
use grip_percolate::Ctx;

/// The straight-line a..g example: chain a->b->c, d->e, f->g.
fn example() -> Graph {
    let mut b = ProgramBuilder::new();
    let start = b.named_reg("s0");
    b.const_f(start, 1.0);
    let a = b.binary("A", OpKind::Mul, Operand::Reg(start), Operand::Imm(Value::F(0.9)));
    let bb = b.binary("B", OpKind::Add, Operand::Reg(a), Operand::Imm(Value::F(1.0)));
    let c = b.binary("C", OpKind::Mul, Operand::Reg(bb), Operand::Imm(Value::F(2.0)));
    let d = b.binary("D", OpKind::Add, Operand::Reg(start), Operand::Imm(Value::F(3.0)));
    let e = b.binary("E", OpKind::Mul, Operand::Reg(d), Operand::Imm(Value::F(4.0)));
    let f_ = b.binary("F", OpKind::Add, Operand::Reg(start), Operand::Imm(Value::F(5.0)));
    let g_ = b.binary("G", OpKind::Mul, Operand::Reg(f_), Operand::Imm(Value::F(6.0)));
    for r in [c, e, g_] {
        b.live_out(r);
    }
    b.finish()
}

fn label(g: &Graph, op: OpId) -> String {
    g.op(op).label().to_string()
}

/// Ops placed strictly below `n` in the chain: the (initial) Moveable set.
fn moveable(g: &Graph, order: &[NodeId], n: NodeId) -> Vec<OpId> {
    let pos = order.iter().position(|&m| m == n).unwrap();
    order[pos + 1..]
        .iter()
        .filter(|&&m| g.node_exists(m))
        .flat_map(|&m| g.node_ops(m).iter().map(|&(_, o)| o))
        .collect()
}

/// Straight-line Unifiable oracle: an op can reach `n` iff no node between
/// holds a (non-copy) writer of one of its operands.
fn unifiable(g: &Graph, order: &[NodeId], n: NodeId) -> Vec<OpId> {
    let pos = order.iter().position(|&m| m == n).unwrap();
    let mut out = Vec::new();
    for (i, &m) in order.iter().enumerate().skip(pos + 1) {
        for &(_, op) in g.node_ops(m) {
            let blocked = order[pos + 1..i].iter().any(|&between| {
                g.node_ops(between).iter().any(|&(_, w)| {
                    g.op(w).dest.is_some_and(|d| g.op(op).reads_reg(d))
                        && g.op(w).kind != OpKind::Copy
                })
            }) || order[pos..=pos].iter().any(|&t| {
                g.node_ops(t).iter().any(|&(_, w)| {
                    g.op(w).dest.is_some_and(|d| g.op(op).reads_reg(d))
                        && g.op(w).kind != OpKind::Copy
                })
            });
            if !blocked {
                out.push(op);
            }
        }
    }
    out
}

fn set_to_string(g: &Graph, ops: &[OpId]) -> String {
    let mut labels: Vec<String> = ops.iter().map(|&o| label(g, o)).collect();
    labels.sort();
    format!("({})", labels.join(","))
}

fn main() {
    let g = example();
    let order: Vec<NodeId> = g.reachable();

    println!("Figure 8 vs Figure 11: candidate sets per node (initial state)\n");
    println!("{:<8} {:<22} {:<22}", "node", "Unifiable-ops", "Moveable-ops");
    for &n in &order {
        let ops: Vec<String> = g.node_ops(n).iter().map(|&(_, o)| label(&g, o)).collect();
        println!(
            "{:<8} {:<22} {:<22}   holds [{}]",
            n.to_string(),
            set_to_string(&g, &unifiable(&g, &order, n)),
            set_to_string(&g, &moveable(&g, &order, n)),
            ops.join(",")
        );
    }
    println!("\nNote: Moveable-ops(n) is simply 'everything below n' — trivially");
    println!("maintained; Unifiable-ops(n) re-examines the path for every member.");

    // GRiP run with trace (Figure 11's move sequence).
    let mut g2 = example();
    let ddg = Ddg::build(&g2, g2.entry);
    let mut ctx = Ctx::new(&g2, &ddg);
    let ranks = RankTable::new(&ddg, false);
    let region = g2.reachable();
    let out = schedule_region(
        &mut g2,
        &mut ctx,
        &ranks,
        GripConfig {
            resources: Resources::vliw(3),
            gap_prevention: false,
            dce: false,
            speculation: Default::default(),
            trace: true,
        },
        region,
    );
    println!("\nGRiP move sequence (3 FUs, scheduling priority = §3.4 ranks):");
    for ev in &out.trace {
        match ev {
            TraceEvent::Node(n) => println!("  schedule({n})"),
            TraceEvent::Hop { op, from, to, arrived } => println!(
                "    move {} : {from} -> {to}{}",
                label(&g2, *op),
                if *arrived { "  (arrived)" } else { "" }
            ),
            _ => {}
        }
    }
    println!("\nFinal GRiP schedule:\n{}", grip_ir::print::dump(&g2));
}
