//! Regenerate **Figures 2 and 3**: the `move-op` and `move-cj` core
//! transformations, shown as before/after program graphs.

#![forbid(unsafe_code)]

use grip_analysis::Ddg;
use grip_ir::{Graph, OpKind, Operand, Operation, Tree, TreePath, Value};
use grip_percolate::{move_cj, move_op, Ctx};

fn main() {
    // ----- Figure 2: move-op -------------------------------------------
    let mut g = Graph::new();
    let x = g.named_reg("x");
    let y = g.named_reg("y");
    let op_x = g.add_op(Operation::new(OpKind::Copy, Some(x), vec![Operand::Imm(Value::I(1))]));
    let op_y = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(y),
        vec![Operand::Imm(Value::I(2)), Operand::Imm(Value::I(3))],
    ));
    let from = g.add_node(Tree::Leaf { ops: vec![op_y], succ: None });
    let to = g.add_node(Tree::Leaf { ops: vec![op_x], succ: Some(from) });
    g.set_succ(g.entry, TreePath::ROOT, Some(to));
    g.live_out = vec![x, y];
    println!("Figure 2: move-op(From={from}, To={to}, Op={op_y}, Path=root)\n");
    println!("BEFORE:\n{}", grip_ir::print::dump(&g));
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    move_op(&mut g, &mut ctx, from, to, op_y, TreePath::ROOT).expect("legal");
    g.validate().unwrap();
    println!("AFTER:\n{}", grip_ir::print::dump(&g));

    // ----- Figure 3: move-cj -------------------------------------------
    let mut g = Graph::new();
    let c = g.named_reg("c");
    let a = g.named_reg("a");
    let t = g.named_reg("t");
    let f_ = g.named_reg("f");
    let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
    let op_a = g.add_op(Operation::new(OpKind::Copy, Some(a), vec![Operand::Imm(Value::I(7))]));
    let op_t = g.add_op(Operation::new(OpKind::Copy, Some(t), vec![Operand::Imm(Value::I(1))]));
    let op_f = g.add_op(Operation::new(OpKind::Copy, Some(f_), vec![Operand::Imm(Value::I(2))]));
    let st = g.add_node(Tree::Leaf { ops: vec![op_t], succ: None });
    let sf = g.add_node(Tree::Leaf { ops: vec![op_f], succ: None });
    let from = g.add_node(Tree::Branch {
        ops: vec![op_a],
        cj,
        on_true: Box::new(Tree::leaf(Some(st))),
        on_false: Box::new(Tree::leaf(Some(sf))),
    });
    let to = g.add_node(Tree::leaf(Some(from)));
    g.set_succ(g.entry, TreePath::ROOT, Some(to));
    g.live_out = vec![a, t, f_];
    println!("\nFigure 3: move-cj(From={from}, To={to}, CJ={cj}, Path=root)\n");
    println!("BEFORE:\n{}", grip_ir::print::dump(&g));
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_cj(&mut g, &mut ctx, from, to, cj, TreePath::ROOT).expect("legal");
    g.validate().unwrap();
    println!(
        "AFTER (true residue {}, false residue {} -- root op duplicated into both):\n{}",
        out.true_residue,
        out.false_residue,
        grip_ir::print::dump(&g)
    );
}
