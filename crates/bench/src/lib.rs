//! # grip-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! * `table1` binary — Table 1 (GRiP vs POST speedups on LL1–LL14 at
//!   2/4/8 FUs, Mean and WHM rows), measured vs paper side by side;
//! * `fig1_instruction_tree`, `fig23_core_transforms`,
//!   `fig56_pipelining`, `fig8_11_traces`, `fig9_13_gaps`,
//!   `intro_example` binaries — the worked figures;
//! * criterion benches (`sched_cost`, `table1`, `simulator`) — the §1/§3.1
//!   computational-efficiency claims and raw substrate throughput.
//!
//! * `machines` binary — the preset sweep: every [`grip_core::MachineDesc`]
//!   preset over LL1–LL14, with latency-aware simulation
//!   (`BENCH_machines.json`).
//!
//! The kernel sweep runs one scoped-thread worker per kernel. Reports are
//! serialized by the dependency-free [`json`] module.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod examples;
pub mod golden;
pub mod machines;

/// JSON serialization, re-exported from [`grip_json`] (the writer lived
/// here before the service layer needed it without the bench crate).
pub use grip_json as json;

use grip_baselines::{post_pipeline, PostOptions};
use grip_core::Resources;
use grip_ir::Graph;
use grip_json::Json;
use grip_kernels::Kernel;
use grip_pipeline::{perfect_pipeline, PipelineOptions, PipelineReport};
use grip_vm::{EquivReport, Machine};

/// One (kernel × FU) measurement.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// GRiP loop-body speedup.
    pub grip: f64,
    /// POST loop-body speedup.
    pub post: f64,
    /// Whether the GRiP schedule converged to an exact pattern (vs slope
    /// estimate).
    pub grip_exact_pattern: bool,
    /// Scheduled-graph simulation matched the sequential program bitwise.
    pub verified: bool,
}

impl Cell {
    /// Serialize for the machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("grip", self.grip)
            .field("post", self.post)
            .field("grip_exact_pattern", self.grip_exact_pattern)
            .field("verified", self.verified)
    }
}

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Kernel name (`LL1`…).
    pub name: String,
    /// Dependence class.
    pub class: String,
    /// Measured cells at 2/4/8 FUs.
    pub cells: [Cell; 3],
    /// Paper's GRiP numbers.
    pub paper_grip: [f64; 3],
    /// Paper's POST numbers.
    pub paper_post: [f64; 3],
    /// Sequential cycles per iteration (the baseline).
    pub seq_cpi: f64,
}

impl Table1Row {
    /// Serialize for the machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("class", self.class.as_str())
            .field("cells", self.cells.iter().map(Cell::to_json).collect::<Vec<_>>())
            .field("paper_grip", self.paper_grip.iter().map(|&x| Json::Num(x)).collect::<Vec<_>>())
            .field("paper_post", self.paper_post.iter().map(|&x| Json::Num(x)).collect::<Vec<_>>())
            .field("seq_cpi", self.seq_cpi)
    }
}

/// The FU configurations of Table 1.
pub const FUS: [usize; 3] = [2, 4, 8];

/// Unwind factor used for a given width (enough iterations to fill the
/// machine, as §1 argues resource-aware pipelining should).
pub fn unwind_for(fus: usize) -> usize {
    (3 * fus).clamp(10, 20)
}

/// Run GRiP (Table 1 configuration) on a kernel at the given width.
pub fn run_grip(k: &Kernel, n: i64, fus: usize) -> (Graph, PipelineReport) {
    let mut g = (k.build)(n);
    let rep = perfect_pipeline(
        &mut g,
        PipelineOptions {
            unwind: unwind_for(fus),
            resources: Resources::vliw(fus),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );
    (g, rep)
}

/// Run POST on a kernel at the given width.
pub fn run_post(k: &Kernel, n: i64, fus: usize) -> (Graph, PipelineReport) {
    let mut g = (k.build)(n);
    let rep = post_pipeline(&mut g, PostOptions::vliw(unwind_for(fus), fus));
    (g, rep)
}

/// Bitwise-compare a transformed kernel graph against the sequential
/// original on the standard inputs.
pub fn verify_kernel(k: &Kernel, g0: &Graph, g1: &Graph, n: i64) -> bool {
    let mut m0 = Machine::for_graph(g0);
    (k.init)(g0, &mut m0, n);
    if m0.run(g0).is_err() {
        return false;
    }
    let mut m1 = Machine::for_graph(g1);
    (k.init)(g1, &mut m1, n);
    if m1.run(g1).is_err() {
        return false;
    }
    EquivReport::compare(g0, &m0, &m1).is_equal()
}

/// Measure one kernel across the three widths.
pub fn measure_kernel(k: &Kernel, n: i64) -> Table1Row {
    let mut cells = Vec::with_capacity(3);
    let mut seq_cpi = 0.0;
    for &fus in &FUS {
        let g0 = (k.build)(n);
        let (g_grip, grip) = run_grip(k, n, fus);
        let (g_post, post) = run_post(k, n, fus);
        seq_cpi = grip.seq_cpi();
        let verified = verify_kernel(k, &g0, &g_grip, n) && verify_kernel(k, &g0, &g_post, n);
        cells.push(Cell {
            grip: grip.speedup().unwrap_or(f64::NAN),
            post: post.speedup().unwrap_or(f64::NAN),
            grip_exact_pattern: grip.pattern.is_some(),
            verified,
        });
    }
    Table1Row {
        name: k.name.to_string(),
        class: k.class.to_string(),
        cells: [cells[0], cells[1], cells[2]],
        paper_grip: k.paper_grip,
        paper_post: k.paper_post,
        seq_cpi,
    }
}

/// Measure all kernels on the service worker pool, one shard per kernel
/// (the same layout the old scoped-thread loop had, minus the loop).
pub fn table1(n: i64, parallel: bool) -> Vec<Table1Row> {
    let ks = grip_kernels::kernels();
    if !parallel {
        return ks.iter().map(|k| measure_kernel(k, n)).collect();
    }
    let pool: grip_service::pool::ShardedPool<&'static Kernel, Table1Row> =
        grip_service::pool::ShardedPool::new(
            ks.len(),
            |_| (),
            move |_, _, k, _| measure_kernel(k, n),
        );
    pool.map_batch(ks.iter().enumerate())
}

/// Arithmetic mean of a column.
pub fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = vals.filter(|x| x.is_finite()).collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Harmonic mean weighted by sequential work per iteration (the paper's
/// WHM row; heavier loops count more).
pub fn whm<'a>(rows: impl Iterator<Item = (&'a Table1Row, f64)>) -> f64 {
    let mut wsum = 0.0;
    let mut acc = 0.0;
    for (row, speedup) in rows {
        if speedup.is_finite() && speedup > 0.0 {
            wsum += row.seq_cpi;
            acc += row.seq_cpi / speedup;
        }
    }
    wsum / acc.max(f64::MIN_POSITIVE)
}

/// Format the measured table next to the paper's numbers.
pub fn render_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "            2 FU's          4 FU's          8 FU's");
    let _ = writeln!(
        s,
        "{:<6} {:>6} {:>6}   {:>6} {:>6}   {:>6} {:>6}   verified",
        "Loop", "GRiP", "POST", "GRiP", "POST", "GRiP", "POST"
    );
    for r in rows {
        let v = r.cells.iter().all(|c| c.verified);
        let _ = writeln!(
            s,
            "{:<6} {:>6.1} {:>6.1}   {:>6.1} {:>6.1}   {:>6.1} {:>6.1}   {}",
            r.name,
            r.cells[0].grip,
            r.cells[0].post,
            r.cells[1].grip,
            r.cells[1].post,
            r.cells[2].grip,
            r.cells[2].post,
            if v { "yes" } else { "NO" },
        );
        let _ = writeln!(
            s,
            "{:<6} {:>6.1} {:>6.1}   {:>6.1} {:>6.1}   {:>6.1} {:>6.1}   (paper)",
            "",
            r.paper_grip[0],
            r.paper_post[0],
            r.paper_grip[1],
            r.paper_post[1],
            r.paper_grip[2],
            r.paper_post[2],
        );
    }
    let mg: Vec<f64> = (0..3).map(|i| mean(rows.iter().map(|r| r.cells[i].grip))).collect();
    let mp: Vec<f64> = (0..3).map(|i| mean(rows.iter().map(|r| r.cells[i].post))).collect();
    let hg: Vec<f64> = (0..3).map(|i| whm(rows.iter().map(|r| (r, r.cells[i].grip)))).collect();
    let hp: Vec<f64> = (0..3).map(|i| whm(rows.iter().map(|r| (r, r.cells[i].post)))).collect();
    let _ = writeln!(
        s,
        "{:<6} {:>6.1} {:>6.1}   {:>6.1} {:>6.1}   {:>6.1} {:>6.1}",
        "Mean", mg[0], mp[0], mg[1], mp[1], mg[2], mp[2]
    );
    let _ = writeln!(
        s,
        "{:<6} {:>6.1} {:>6.1}   {:>6.1} {:>6.1}   {:>6.1} {:>6.1}",
        "WHM", hg[0], hp[0], hg[1], hp[1], hg[2], hp[2]
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_whm_behave() {
        assert!((mean([2.0, 4.0].into_iter()) - 3.0).abs() < 1e-12);
        let row = Table1Row {
            name: "X".into(),
            class: "t".into(),
            cells: [Cell { grip: 2.0, post: 2.0, grip_exact_pattern: true, verified: true }; 3],
            paper_grip: [2.0; 3],
            paper_post: [2.0; 3],
            seq_cpi: 6.0,
        };
        let h = whm([(&row, 2.0), (&row, 4.0)].into_iter());
        assert!((h - 8.0 / 3.0).abs() < 1e-9, "weighted harmonic mean of 2 and 4: {h}");
    }

    #[test]
    fn single_kernel_measurement_is_sane() {
        let k = grip_kernels::kernels().iter().find(|k| k.name == "LL12").unwrap();
        let row = measure_kernel(k, 40);
        assert!(row.cells.iter().all(|c| c.verified), "{row:?}");
        assert!(row.cells[0].grip >= 1.5);
        assert!(row.cells[2].grip >= row.cells[0].grip - 0.2, "more FUs never hurt much");
        assert!(row.cells[2].grip >= row.cells[2].post - 0.35, "GRiP >= POST");
    }
}
