//! Golden schedule digests: a structural fingerprint of every scheduled
//! window, pinned across scheduler rewrites.
//!
//! The hot-loop optimization work (ROADMAP item 1) rewrites the GRiP /
//! percolate internals for speed while promising *bit-identical*
//! schedules wherever candidate order is preserved. The digest here is
//! the enforcement mechanism: it hashes the full post-schedule graph
//! listing (every op with registers, immediates, displacements and
//! iteration tags, every tree shape, every successor edge) plus the
//! region row order, so any behavioural drift — a different rename, a
//! different landing row, a different residue — changes the digest.
//!
//! `tests/golden_schedules.json` (workspace root) holds the digests
//! captured from the *pre-optimization* scheduler; the
//! `golden_schedules` test recomputes them with the current build. Cells
//! whose schedule is deliberately allowed to shift (a candidate-order
//! change) must be waived explicitly there and are then held to a
//! `sched_cycles`-no-worse bar instead.

use crate::json::Json;
use crate::unwind_for;
use grip_core::{MachineDesc, Resources};
use grip_ir::{Fnv, Graph, NodeId};
use grip_kernels::Kernel;
use grip_pipeline::{perfect_pipeline, PipelineOptions};
use grip_vm::Machine;

/// One pinned (machine × kernel) schedule fingerprint.
#[derive(Clone, Debug)]
pub struct GoldenCell {
    /// Preset name (`uniform4`, `clustered`, …).
    pub machine: String,
    /// Kernel name (`LL1`…).
    pub kernel: String,
    /// Structural digest of the scheduled graph + region order.
    pub digest: u64,
    /// Steady rows of the schedule.
    pub rows: usize,
    /// Latency-aware model cycles of the scheduled program (the bar a
    /// waived cell must not regress).
    pub sched_cycles: u64,
}

impl GoldenCell {
    /// Serialize for `tests/golden_schedules.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("machine", self.machine.as_str())
            .field("kernel", self.kernel.as_str())
            .field("digest", format!("{:016x}", self.digest).as_str())
            .field("rows", self.rows)
            .field("sched_cycles", self.sched_cycles)
    }
}

/// Structural digest of a scheduled graph: the full reachable listing
/// (ops, operands, displacements, iteration tags, tree shapes, successor
/// edges, node ids) plus the scheduler's region row order.
pub fn schedule_digest(g: &Graph, region: &[NodeId]) -> u64 {
    let mut h = Fnv::new();
    h.str(&grip_ir::print::dump(g));
    h.word(region.len() as u64);
    for &n in region {
        h.word(n.index() as u64);
    }
    h.finish()
}

/// Schedule one kernel on one preset (the exact `measure_machine`
/// configuration) and fingerprint the result.
pub fn golden_cell(k: &Kernel, n: i64, desc: MachineDesc) -> GoldenCell {
    let g0 = (k.build)(n);
    let mut g = g0.clone();
    let unwind = unwind_for(desc.width.min(8));
    let rep = perfect_pipeline(
        &mut g,
        PipelineOptions {
            unwind,
            resources: Resources::machine(desc),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );
    let digest = schedule_digest(&g, &rep.region);
    let mut m = Machine::for_graph(&g);
    (k.init)(&g, &mut m, n);
    let sched_cycles = m.run_model(&g, &desc).map(|s| s.total_cycles()).unwrap_or(0);
    GoldenCell {
        machine: crate::machines::preset_label(&desc),
        kernel: k.name.to_string(),
        digest,
        rows: rep.steady.len(),
        sched_cycles,
    }
}

/// Fingerprint every preset × kernel cell, one pool shard per kernel.
pub fn golden_table(n: i64, parallel: bool) -> Vec<GoldenCell> {
    let ks = grip_kernels::kernels();
    let presets = MachineDesc::presets();
    let sweep = move |k: &'static Kernel| -> Vec<GoldenCell> {
        presets.iter().map(|&d| golden_cell(k, n, d)).collect()
    };
    if !parallel {
        return ks.iter().flat_map(sweep).collect();
    }
    let pool: grip_service::pool::ShardedPool<&'static Kernel, Vec<GoldenCell>> =
        grip_service::pool::ShardedPool::new(ks.len(), |_| (), move |_, _, k, _| sweep(k));
    pool.map_batch(ks.iter().enumerate()).into_iter().flatten().collect()
}

/// The whole golden table as one JSON document.
pub fn golden_json(n: i64, cells: &[GoldenCell]) -> Json {
    Json::obj()
        .field("bench", "golden_schedules")
        .field("trip_count", n)
        .field("cells", cells.iter().map(GoldenCell::to_json).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_structure_sensitive() {
        let k = grip_kernels::kernels().iter().find(|k| k.name == "LL12").unwrap();
        let a = golden_cell(k, 24, MachineDesc::uniform(2));
        let b = golden_cell(k, 24, MachineDesc::uniform(2));
        assert_eq!(a.digest, b.digest, "same schedule must digest identically");
        let c = golden_cell(k, 24, MachineDesc::uniform(4));
        assert_ne!(a.digest, c.digest, "different schedules must digest differently");
    }
}
