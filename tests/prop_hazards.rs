//! Stall-freedom property tests: every schedule GRiP emits must run on
//! its target machine without a single interlock stall, and with the
//! observable state (live-out registers plus all memory) bit-identical
//! to the sequential original.
//!
//! Random loops come from a deterministic splitmix PRNG (the container is
//! offline, so `proptest` is unavailable); every failure reports its case
//! seed, which reproduces the exact program. The kernel sweep covers all
//! machine presets × LL1–LL14 — the same grid as `BENCH_machines.json`.

use grip::prelude::*;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random loop body mixing all functional-unit classes: loads (MEM),
/// float arithmetic incl. the long-latency divide (FPU), integer ops
/// (ALU), stores, and an optional loop-carried recurrence.
#[derive(Clone, Debug)]
struct LoopRecipe {
    ops: Vec<BodyOp>,
    recurrence: bool,
    trip: i64,
}

#[derive(Clone, Debug)]
enum BodyOp {
    Load(i8),
    Arith(u8, u8, u8),
    Store(u8),
}

fn recipe(rng: &mut Rng) -> LoopRecipe {
    let len = 2 + rng.below(7) as usize;
    let ops = (0..len)
        .map(|_| match rng.below(3) {
            0 => BodyOp::Load(rng.below(4) as i8),
            1 => BodyOp::Arith(rng.below(256) as u8, rng.below(256) as u8, rng.below(5) as u8),
            _ => BodyOp::Store(rng.below(256) as u8),
        })
        .collect();
    LoopRecipe { ops, recurrence: rng.below(2) == 1, trip: 1 + rng.below(23) as i64 }
}

fn build(r: &LoopRecipe) -> Graph {
    let len = (r.trip + 64) as usize;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let mut pool: Vec<RegId> = vec![acc];
    if r.recurrence {
        b.emit(Operation::new(
            OpKind::Mul,
            Some(acc),
            vec![Operand::Reg(acc), Operand::Imm(Value::F(0.875))],
        ));
    }
    for (i, op) in r.ops.iter().enumerate() {
        match *op {
            BodyOp::Load(d) => {
                let t = b.load(&format!("l{i}"), x, Operand::Reg(k), d.unsigned_abs() as i64);
                pool.push(t);
            }
            BodyOp::Arith(a, bb, kind) => {
                let ra = pool[a as usize % pool.len()];
                let rb = pool[bb as usize % pool.len()];
                // Div exercises the long-latency FPU path (up to 16
                // cycles on epic8): the deepest hazard-scan window.
                let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Min, OpKind::Div];
                let t = b.binary(
                    &format!("a{i}"),
                    kinds[kind as usize % kinds.len()],
                    Operand::Reg(ra),
                    Operand::Reg(rb),
                );
                pool.push(t);
            }
            BodyOp::Store(a) => {
                let ra = pool[a as usize % pool.len()];
                b.store(y, Operand::Reg(k), 0, Operand::Reg(ra));
            }
        }
    }
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(r.trip)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    g
}

fn init(m: &mut Machine, len: usize) {
    let xs: Vec<f64> = (0..len).map(|i| 0.25 + (i % 17) as f64 * 0.0625).collect();
    m.set_array_f(ArrayId::new(0), &xs);
}

/// Schedule `g0` for `desc`, then check the stall-free invariant and
/// bitwise equivalence against the sequential original.
fn check_stall_free(g0: &Graph, desc: MachineDesc, len: usize, label: &str) {
    let mut g = g0.clone();
    let width = desc.width.min(8);
    perfect_pipeline(
        &mut g,
        PipelineOptions {
            unwind: (width + 2).min(8),
            resources: Resources::machine(desc),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );
    g.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(
        grip::core::hazards::scan_hazards(&g, &desc),
        0,
        "{label}: static hazards survive scheduling"
    );

    let mut m0 = Machine::for_graph(g0);
    init(&mut m0, len);
    m0.run(g0).unwrap_or_else(|e| panic!("{label}: sequential: {e}"));
    let mut m1 = Machine::for_graph(&g);
    init(&mut m1, len);
    let stats = m1.run_model(&g, &desc).unwrap_or_else(|e| panic!("{label}: model: {e}"));

    assert_eq!(stats.stall_cycles, 0, "{label}: schedule stalls under the model");
    assert_eq!(stats.template_violations, 0, "{label}: schedule breaks its issue template");
    let rep = EquivReport::compare(g0, &m0, &m1);
    assert!(rep.is_equal(), "{label}: final state diverged: {rep:?}");
}

fn cases() -> u64 {
    if cfg!(debug_assertions) {
        10
    } else {
        24
    }
}

/// Random mixed-class loops are stall-free and exact on every
/// multi-latency preset.
#[test]
fn random_loops_schedule_stall_free_on_all_presets() {
    for case in 0..cases() {
        let mut rng = Rng(0x57A11 ^ (case << 32));
        let r = recipe(&mut rng);
        let g0 = build(&r);
        g0.validate().unwrap();
        let len = (r.trip + 64) as usize;
        for desc in [MachineDesc::clustered(), MachineDesc::mem_bound(), MachineDesc::epic8()] {
            check_stall_free(&g0, desc, len, &format!("case {case} on {} ({r:?})", desc.name));
        }
    }
}

/// The full bench grid: every preset × every Livermore kernel is
/// stall-free, template-clean, and bit-exact.
#[test]
fn kernels_schedule_stall_free_on_all_presets() {
    let n: i64 = if cfg!(debug_assertions) { 12 } else { 32 };
    for desc in MachineDesc::presets() {
        for k in grip::kernels::kernels() {
            let g0 = (k.build)(n);
            let mut g = g0.clone();
            perfect_pipeline(
                &mut g,
                PipelineOptions {
                    unwind: 6,
                    resources: Resources::machine(desc),
                    fold_inductions: true,
                    gap_prevention: true,
                    dce: true,
                    try_roll: false,
                    audit: false,
                },
            );
            let label = format!("{} on {}", k.name, desc.name);
            g.validate().unwrap_or_else(|e| panic!("{label}: {e}"));

            let mut m0 = Machine::for_graph(&g0);
            (k.init)(&g0, &mut m0, n);
            m0.run(&g0).unwrap_or_else(|e| panic!("{label}: sequential: {e}"));
            let mut m1 = Machine::for_graph(&g);
            (k.init)(&g, &mut m1, n);
            let stats = m1.run_model(&g, &desc).unwrap_or_else(|e| panic!("{label}: model: {e}"));

            assert_eq!(stats.stall_cycles, 0, "{label}: stalls");
            assert_eq!(stats.template_violations, 0, "{label}: template");
            let rep = EquivReport::compare(&g0, &m0, &m1);
            assert!(rep.is_equal(), "{label}: diverged: {rep:?}");
        }
    }
}
