//! Bound-soundness property tests: every certificate `grip-bounds` proves
//! must actually lower-bound what the machine does. Two layers of check:
//!
//! 1. **Certificate soundness** — the steady window the scheduler emitted
//!    is itself a witness schedule, so `steady.len() >= bound_cycles`
//!    always, on every kernel, preset, and random program.
//! 2. **VM cross-check** — one traversal of the steady window executes
//!    `unwind` iterations in `steady.len()` cycles, so a trip of `t`
//!    iterations forces the simulated wall-clock above
//!    `(t/unwind - 2) * bound_cycles` (slack for the prologue pass and
//!    the final partial traversal). This re-derives the bound against
//!    the latency-aware VM rather than trusting the scheduler's own row
//!    count.
//!
//! Random loops come from the same deterministic splitmix PRNG as
//! `prop_hazards` (the container is offline, so `proptest` is
//! unavailable); failures report the case seed. The kernel sweep covers
//! all machine presets × LL1–LL14 — the `BENCH_machines.json` grid.
//!
//! On unit-latency `uniform*` machines the prover is also *exact* for the
//! kernels without loop-carried recurrences: GRiP packs them to their
//! resource bound, so `at_bound` must hold (pinned below). The recurrence
//! kernels pin their RecMII values instead.

use grip::bounds::analyze;
use grip::pipeline::{prepare, schedule_window};
use grip::prelude::*;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random loop body mixing all functional-unit classes, with an
/// optional loop-carried recurrence to exercise the RecMII analysis.
#[derive(Clone, Debug)]
struct LoopRecipe {
    ops: Vec<BodyOp>,
    recurrence: bool,
    trip: i64,
}

#[derive(Clone, Debug)]
enum BodyOp {
    Load(i8),
    Arith(u8, u8, u8),
    Store(u8),
}

fn recipe(rng: &mut Rng) -> LoopRecipe {
    let len = 2 + rng.below(7) as usize;
    let ops = (0..len)
        .map(|_| match rng.below(3) {
            0 => BodyOp::Load(rng.below(4) as i8),
            1 => BodyOp::Arith(rng.below(256) as u8, rng.below(256) as u8, rng.below(5) as u8),
            _ => BodyOp::Store(rng.below(256) as u8),
        })
        .collect();
    LoopRecipe { ops, recurrence: rng.below(2) == 1, trip: 1 + rng.below(23) as i64 }
}

fn build(r: &LoopRecipe) -> Graph {
    let len = (r.trip + 64) as usize;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let mut pool: Vec<RegId> = vec![acc];
    if r.recurrence {
        b.emit(Operation::new(
            OpKind::Mul,
            Some(acc),
            vec![Operand::Reg(acc), Operand::Imm(Value::F(0.875))],
        ));
    }
    for (i, op) in r.ops.iter().enumerate() {
        match *op {
            BodyOp::Load(d) => {
                let t = b.load(&format!("l{i}"), x, Operand::Reg(k), d.unsigned_abs() as i64);
                pool.push(t);
            }
            BodyOp::Arith(a, bb, kind) => {
                let ra = pool[a as usize % pool.len()];
                let rb = pool[bb as usize % pool.len()];
                let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Min, OpKind::Div];
                let t = b.binary(
                    &format!("a{i}"),
                    kinds[kind as usize % kinds.len()],
                    Operand::Reg(ra),
                    Operand::Reg(rb),
                );
                pool.push(t);
            }
            BodyOp::Store(a) => {
                let ra = pool[a as usize % pool.len()];
                b.store(y, Operand::Reg(k), 0, Operand::Reg(ra));
            }
        }
    }
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(r.trip)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    g
}

fn init(m: &mut Machine, len: usize) {
    let xs: Vec<f64> = (0..len).map(|i| 0.25 + (i % 17) as f64 * 0.0625).collect();
    m.set_array_f(ArrayId::new(0), &xs);
}

fn pipeline_opts(desc: MachineDesc, unwind: usize) -> PipelineOptions {
    PipelineOptions {
        unwind,
        resources: Resources::machine(desc),
        fold_inductions: true,
        gap_prevention: true,
        dce: true,
        try_roll: false,
        audit: false,
    }
}

/// Machine-state initializer for the VM cross-check.
type InitFn<'a> = &'a dyn Fn(&Graph, &mut Machine);

/// Schedule a clone of `g0` for `desc` and check both soundness layers.
/// `vm` optionally supplies the machine-state initializer for the VM
/// cross-check. Returns the report for further (tightness) assertions.
fn check_sound(
    g0: &Graph,
    desc: MachineDesc,
    unwind: usize,
    vm: Option<InitFn>,
    label: &str,
) -> grip::pipeline::PipelineReport {
    let mut g = g0.clone();
    let rep = perfect_pipeline(&mut g, pipeline_opts(desc, unwind));
    let b = &rep.bounds;

    // Layer 1: the emitted steady window is a witness schedule, so the
    // proven bound may never exceed its row count.
    let rows = rep.steady.len() as u64;
    assert!(
        rows >= b.bound_cycles,
        "{label}: unsound certificate: {rows} steady rows < proven bound {b:?}"
    );
    assert!(b.gap_pct >= 0.0, "{label}: negative gap: {b:?}");
    assert_eq!(b.at_bound, rows == b.bound_cycles, "{label}: at_bound inconsistent: {b:?}");

    // Layer 2: re-derive the bound against the latency-aware VM. Each
    // loop iteration evaluates exactly one conditional jump, so the VM's
    // `cjs_evaluated` counter *is* the trip count (kernels start their
    // induction at kernel-specific offsets — LL4 at k=5 — so the build
    // parameter `n` is not). A trip of `iters` forces at least
    // `iters/unwind - 2` complete steady-window traversals (one pass of
    // slack for the prologue, one for the final partial traversal), each
    // costing at least `bound_cycles`.
    if let Some(init) = vm {
        let mut m = Machine::for_graph(&g);
        init(&g, &mut m);
        let stats = m.run_model(&g, &desc).unwrap_or_else(|e| panic!("{label}: model: {e}"));
        let iters = stats.base.cjs_evaluated;
        let traversals = (iters / unwind as u64).saturating_sub(2);
        assert!(
            stats.total_cycles() >= traversals * b.bound_cycles,
            "{label}: VM ran {} cycles over {iters} iterations, below {traversals} \
             traversals x bound {b:?}",
            stats.total_cycles()
        );
        // With a full pass guaranteed (no early exit can fire before the
        // trip count runs out), the wall clock singly covers the bound.
        if iters >= unwind as u64 {
            assert!(
                stats.total_cycles() >= b.bound_cycles,
                "{label}: VM ran {} cycles, below proven bound {b:?}",
                stats.total_cycles()
            );
        }
    }
    rep
}

fn cases() -> u64 {
    if cfg!(debug_assertions) {
        10
    } else {
        24
    }
}

fn kernel_n() -> i64 {
    if cfg!(debug_assertions) {
        12
    } else {
        32
    }
}

/// Every preset × every Livermore kernel carries a sound certificate,
/// against both the steady window and the simulated machine.
#[test]
fn kernel_bounds_are_sound_on_all_presets() {
    let n = kernel_n();
    for desc in MachineDesc::presets() {
        for k in grip::kernels::kernels() {
            let g0 = (k.build)(n);
            let init = |g: &Graph, m: &mut Machine| (k.init)(g, m, n);
            check_sound(&g0, desc, 6, Some(&init), &format!("{} on {}", k.name, desc.name));
        }
    }
}

/// Random mixed-class loops (including loop-carried recurrences) carry
/// sound certificates on the heterogeneous multi-latency presets.
#[test]
fn random_loop_bounds_are_sound_on_heterogeneous_presets() {
    for case in 0..cases() {
        let mut rng = Rng(0xB0B0 ^ (case << 32));
        let r = recipe(&mut rng);
        let g0 = build(&r);
        g0.validate().unwrap();
        let len = (r.trip + 64) as usize;
        let init = |_: &Graph, m: &mut Machine| init(m, len);
        for desc in [MachineDesc::clustered(), MachineDesc::mem_bound(), MachineDesc::epic8()] {
            let unwind = (desc.width.min(8) + 2).min(8);
            check_sound(
                &g0,
                desc,
                unwind,
                Some(&init),
                &format!("case {case} on {} ({r:?})", desc.name),
            );
        }
    }
}

/// The prover's other side — tightness. A bound so weak it never binds
/// would pass every soundness check, so pin exactly which cells of the
/// unit-latency uniform sweep close their gap (`at_bound`): on uniform4
/// and uniform8 the pigeonhole/critical-path pair is exact for half the
/// kernels, and *every* uniform cell lands within three rows of its
/// proven bound (the residue is the steady window's ragged boundary
/// rows, which the per-traversal pigeonhole cannot see).
#[test]
fn uniform_bounds_are_tight() {
    let exact4 = ["LL4", "LL5", "LL8", "LL10", "LL12", "LL13", "LL14"];
    let exact8 = ["LL3", "LL4", "LL5", "LL6", "LL8", "LL11", "LL13", "LL14"];
    let n = kernel_n();
    for (width, exact) in [(2usize, &[][..]), (4, &exact4[..]), (8, &exact8[..])] {
        for k in grip::kernels::kernels() {
            let g0 = (k.build)(n);
            let label = format!("{} on uniform{width}", k.name);
            let rep = check_sound(&g0, MachineDesc::uniform(width), 6, None, &label);
            let gap_rows = rep.steady.len() as u64 - rep.bounds.bound_cycles;
            assert!(gap_rows <= 3, "{label}: gap of {gap_rows} rows ({:?})", rep.bounds);
            assert_eq!(
                rep.bounds.at_bound,
                exact.contains(&k.name),
                "{label}: at_bound drifted ({:?} vs {} rows)",
                rep.bounds,
                rep.steady.len()
            );
        }
    }
}

/// Pin the recurrence analysis on the three classically recurrence-bound
/// Livermore kernels. The values are latency-weighted cycle lengths of
/// the tightest loop-carried dependence chain in the *unwound* window
/// (unwind 6), so they scale with both the chain shape and the FP
/// latency of the preset.
#[test]
fn recurrence_kernels_pin_rec_mii() {
    // (kernel, preset, expected rec_mii over the 6-deep window).
    //
    // LL5 (tridiag elimination) chains sub∘mul through x[i-1]: two
    // float ops per iteration × 6 unwound iterations = 12 at unit
    // latency, ×2 on clustered (fpu=2), ×4 on epic8 (fpu=4).
    // LL6 (linear recurrence) adds one accumulate per iteration on top
    // of the same shape — 13 at unit latency.
    // LL8 (ADI) carries no float value across the back edge: its only
    // loop-carried cycle is the induction/compare pair, rec_mii 2 —
    // the case that shows the analysis *not* inventing recurrences.
    // LL11 (partial sums) is the pure first-order chain: one add per
    // iteration at unit latency, FP-latency×6 on epic8.
    for (kernel, desc, want) in [
        ("LL5", MachineDesc::uniform(4), PIN_LL5_UNIFORM),
        ("LL5", MachineDesc::clustered(), PIN_LL5_CLUSTERED),
        ("LL5", MachineDesc::epic8(), PIN_LL5_EPIC8),
        ("LL6", MachineDesc::uniform(4), PIN_LL6_UNIFORM),
        ("LL8", MachineDesc::uniform(4), PIN_LL8_UNIFORM),
        ("LL11", MachineDesc::uniform(4), PIN_LL11_UNIFORM),
        ("LL11", MachineDesc::epic8(), PIN_LL11_EPIC8),
    ] {
        let n = kernel_n();
        let k = grip::kernels::kernels().iter().find(|k| k.name == kernel).unwrap();
        let g0 = (k.build)(n);
        let mut g = g0.clone();
        let pw = prepare(&mut g, 6, true);
        let rep = schedule_window(&mut g, pw.window, &pw.ddg, pipeline_opts(desc, 6));
        let ana = analyze(&g, &rep.steady, &pw.ddg, &desc);
        assert_eq!(
            ana.rec_mii, want,
            "{kernel} on {}: rec_mii changed (analysis: {ana:?})",
            desc.name
        );
        // The recurrence bound must never be claimed above what the
        // scheduler achieved.
        assert!(ana.rec_mii <= rep.steady.len() as u64, "{kernel}: rec_mii unsound");
    }
}

// Pinned RecMII values (see `recurrence_kernels_pin_rec_mii`); asserted
// equal in debug and release, so they must not depend on `kernel_n`.
const PIN_LL5_UNIFORM: u64 = 12;
const PIN_LL5_CLUSTERED: u64 = 24;
const PIN_LL5_EPIC8: u64 = 48;
const PIN_LL6_UNIFORM: u64 = 13;
const PIN_LL8_UNIFORM: u64 = 2;
const PIN_LL11_UNIFORM: u64 = 6;
const PIN_LL11_EPIC8: u64 = 24;

/// Not a test: prints region-level bound equality on the heterogeneous
/// presets (the early-exit criterion). Run with `--ignored --nocapture`.
#[test]
#[ignore]
fn probe_region_bounds() {
    let n = kernel_n();
    println!("kernel preset region_rows bound binding");
    for desc in [MachineDesc::clustered(), MachineDesc::mem_bound(), MachineDesc::epic8()] {
        for k in grip::kernels::kernels() {
            let g0 = (k.build)(n);
            let mut g = g0.clone();
            let pw = prepare(&mut g, 6, true);
            let rep = schedule_window(&mut g, pw.window, &pw.ddg, pipeline_opts(desc, 6));
            let live: Vec<_> = rep.region.iter().copied().filter(|&r| g.node_exists(r)).collect();
            let ana = analyze(&g, &live, &pw.ddg, &desc);
            let (bound, binding) = ana.bound();
            println!(
                "{} {} {} {} {} {}",
                k.name,
                desc.name,
                live.len(),
                bound,
                binding,
                if live.len() as u64 == bound { "EXIT" } else { "" },
            );
        }
    }
}

/// Not a test: prints the full bound table for pinning. Run with
/// `cargo test -q --release --test prop_bounds -- --ignored probe --nocapture`.
#[test]
#[ignore]
fn probe_bound_table() {
    let n = kernel_n();
    println!("kernel preset rows bound binding rec res cp at_bound");
    for desc in MachineDesc::presets() {
        for k in grip::kernels::kernels() {
            let g0 = (k.build)(n);
            let mut g = g0.clone();
            let pw = prepare(&mut g, 6, true);
            let rep = schedule_window(&mut g, pw.window, &pw.ddg, pipeline_opts(desc, 6));
            let ana = analyze(&g, &rep.steady, &pw.ddg, &desc);
            println!(
                "{} {} {} {} {} {} {} {} {}",
                k.name,
                desc.name,
                rep.steady.len(),
                rep.bounds.bound_cycles,
                rep.bounds.binding_constraint,
                ana.rec_mii,
                ana.res_mii,
                ana.critical_path,
                rep.bounds.at_bound,
            );
        }
    }
}
