//! Workspace integration tests: the full stack (kernels → unwinding →
//! analysis → GRiP/POST → pattern → simulator) on real workloads, with the
//! paper's qualitative claims asserted.

use grip::baselines::{post_pipeline, PostOptions};
use grip::kernels::{default_init, kernels};
use grip::prelude::*;

/// Debug builds run the same assertions on smaller windows so the
/// unoptimized test suite stays fast; release uses measurement-grade sizes.
fn unwind_for(fus: usize) -> usize {
    if cfg!(debug_assertions) {
        (2 * fus).clamp(6, 10)
    } else {
        (3 * fus).clamp(10, 20)
    }
}

fn trip() -> i64 {
    if cfg!(debug_assertions) {
        24
    } else {
        48
    }
}

fn grip_opts(fus: usize) -> PipelineOptions {
    PipelineOptions {
        unwind: unwind_for(fus),
        resources: Resources::vliw(fus),
        fold_inductions: true,
        gap_prevention: true,
        dce: true,
        try_roll: false,
        audit: false,
    }
}

fn verify(k: &grip::kernels::Kernel, g0: &Graph, g1: &Graph, n: i64) {
    let mut m0 = Machine::for_graph(g0);
    (k.init)(g0, &mut m0, n);
    m0.run(g0).unwrap_or_else(|e| panic!("{}: sequential failed: {e}", k.name));
    let mut m1 = Machine::for_graph(g1);
    (k.init)(g1, &mut m1, n);
    m1.run(g1).unwrap_or_else(|e| panic!("{}: transformed failed: {e}", k.name));
    let rep = EquivReport::compare(g0, &m0, &m1);
    assert!(rep.is_equal(), "{}: diverged: {rep:?}", k.name);
}

/// Every kernel, every width: GRiP output is observationally identical to
/// the sequential program, and achieves a real speedup.
#[test]
fn grip_is_exact_and_profitable_everywhere() {
    let n = trip();
    for k in kernels() {
        for fus in [2usize, 4, 8] {
            let g0 = (k.build)(n);
            let mut g = g0.clone();
            let rep = perfect_pipeline(&mut g, grip_opts(fus));
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
            verify(k, &g0, &g, n);
            let sp = rep.speedup().unwrap_or(0.0);
            assert!(sp > 1.5, "{} @{fus}FU: speedup {sp:.2} too small", k.name);
        }
    }
}

/// Table 1's headline claim: GRiP never loses to POST (beyond estimator
/// noise), and the vectorizable kernels approach the machine width.
#[test]
fn grip_dominates_post_and_fills_vector_loops() {
    let n = trip();
    let vectorizable = ["LL1", "LL7", "LL9", "LL10", "LL12"];
    for k in kernels() {
        for fus in [2usize, 4] {
            let mut g1 = (k.build)(n);
            let grip = perfect_pipeline(&mut g1, grip_opts(fus));
            let mut g2 = (k.build)(n);
            let post = post_pipeline(&mut g2, PostOptions::vliw(unwind_for(fus), fus));
            // Cap both at the physical issue bound: a slope estimate above
            // width×1.15 means the (debug-sized) window never reached steady
            // state and measures fill, not throughput.
            let cap = fus as f64 * 1.15;
            let (sg, sp) =
                (grip.speedup().unwrap_or(0.0).min(cap), post.speedup().unwrap_or(0.0).min(cap));
            assert!(sg >= sp - 0.45, "{} @{fus}FU: POST {sp:.2} beats GRiP {sg:.2}", k.name);
            if vectorizable.contains(&k.name) {
                assert!(
                    sg >= 0.85 * fus as f64,
                    "{} @{fus}FU: vectorizable loop should fill the machine, got {sg:.2}",
                    k.name
                );
            }
        }
    }
}

/// Speedup is monotone (within noise) in machine width.
#[test]
fn speedup_monotone_in_width() {
    let n = trip();
    for k in kernels() {
        let mut prev = 0.0f64;
        for fus in [2usize, 4, 8] {
            let mut g = (k.build)(n);
            let rep = perfect_pipeline(&mut g, grip_opts(fus));
            let sp = rep.speedup().unwrap_or(0.0);
            assert!(
                sp >= prev - 0.3,
                "{}: speedup dropped {prev:.2} -> {sp:.2} at {fus} FUs",
                k.name
            );
            prev = sp;
        }
    }
}

/// Recurrence-bound kernels saturate: more FUs stop helping, exactly the
/// paper's LL5/LL6/LL13 behaviour.
#[test]
fn recurrences_saturate() {
    let n = trip();
    for name in ["LL5", "LL6", "LL8", "LL13"] {
        let k = kernels().iter().find(|k| k.name == name).unwrap();
        let mut g8 = (k.build)(n);
        let s8 = perfect_pipeline(&mut g8, grip_opts(8)).speedup().unwrap();
        let mut g16 = (k.build)(n);
        let s16 = perfect_pipeline(
            &mut g16,
            PipelineOptions {
                resources: Resources::vliw(16),
                unwind: unwind_for(8),
                ..grip_opts(8)
            },
        )
        .speedup()
        .unwrap();
        assert!(
            s16 <= s8 + 0.6,
            "{name}: recurrence should saturate, got {s8:.2} @8 vs {s16:.2} @16"
        );
    }
}

/// Mid-loop exits: every trip count leaves the pipelined loop through a
/// different fix-up; all of them must restore the canonical registers.
#[test]
fn all_exit_paths_are_exact() {
    let k = kernels().iter().find(|k| k.name == "LL11").unwrap();
    for n in 1..=24i64 {
        let g0 = (k.build)(n);
        let mut g = g0.clone();
        perfect_pipeline(&mut g, grip_opts(4));
        verify(k, &g0, &g, n);
    }
}

/// The scheduled window respects the machine width on its steady rows.
#[test]
fn schedules_respect_resources() {
    let n = trip();
    for k in kernels() {
        for fus in [2usize, 4, 8] {
            let mut g = (k.build)(n);
            let rep = perfect_pipeline(&mut g, grip_opts(fus));
            for &row in &rep.steady {
                if g.node_exists(row) {
                    assert!(
                        g.node_op_count(row) <= fus,
                        "{} @{fus}FU: row {row} holds {} ops",
                        k.name,
                        g.node_op_count(row)
                    );
                }
            }
        }
    }
}

/// Sequential IR semantics equal the native Rust references (substrate
/// sanity, end to end through the facade).
#[test]
fn kernel_references_hold_at_scale() {
    let n = if cfg!(debug_assertions) { 50 } else { 100 };
    for k in kernels() {
        grip::kernels::validate(k, n).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The machine simulator agrees with the reference on cycle accounting:
/// sequential cycles = nodes per iteration × iterations + prologue.
#[test]
fn sequential_cycle_accounting() {
    let k = kernels().iter().find(|k| k.name == "LL12").unwrap();
    let n = 32i64;
    let g = (k.build)(n);
    let mut m = Machine::for_graph(&g);
    default_init(&g, &mut m, n);
    let stats = m.run(&g).unwrap();
    // LL12: entry + const + n * (6 ops + latch) + exit
    assert_eq!(stats.cycles, 2 + (n as u64) * 7 + 1);
}
