//! Property tests over the full pipeline: randomly generated loops are
//! pipelined and must stay observationally identical to their sequential
//! originals, across widths and trip counts.

use grip::prelude::*;
use proptest::prelude::*;

/// A random loop-body recipe: a mix of loads, stores, arithmetic, and an
/// optional register-carried recurrence.
#[derive(Clone, Debug)]
struct LoopRecipe {
    ops: Vec<BodyOp>,
    recurrence: bool,
    trip: i64,
    fus: usize,
}

#[derive(Clone, Debug)]
enum BodyOp {
    /// load from x at k+disp, result feeds the pool
    Load(i8),
    /// fresh = pool[a] ⊕ pool[b]
    Arith(u8, u8, u8),
    /// store pool[a] to y[k]
    Store(u8),
}

fn recipe() -> impl Strategy<Value = LoopRecipe> {
    let body = proptest::collection::vec(
        prop_oneof![
            (0i8..4).prop_map(BodyOp::Load),
            (any::<u8>(), any::<u8>(), 0u8..4).prop_map(|(a, b, k)| BodyOp::Arith(a, b, k)),
            any::<u8>().prop_map(BodyOp::Store),
        ],
        2..10,
    );
    (body, any::<bool>(), 1i64..40, prop_oneof![Just(2usize), Just(3), Just(4), Just(8)])
        .prop_map(|(ops, recurrence, trip, fus)| LoopRecipe { ops, recurrence, trip, fus })
}

fn build(r: &LoopRecipe) -> Graph {
    let len = (r.trip + 64) as usize;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let mut pool: Vec<RegId> = vec![acc];
    if r.recurrence {
        // acc = acc * 0.875 (self-LCD)
        b.emit(Operation::new(
            OpKind::Mul,
            Some(acc),
            vec![Operand::Reg(acc), Operand::Imm(Value::F(0.875))],
        ));
    }
    for (i, op) in r.ops.iter().enumerate() {
        match *op {
            BodyOp::Load(d) => {
                let t = b.load(&format!("l{i}"), x, Operand::Reg(k), d.unsigned_abs() as i64);
                pool.push(t);
            }
            BodyOp::Arith(a, bb, kind) => {
                let ra = pool[a as usize % pool.len()];
                let rb = pool[bb as usize % pool.len()];
                let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Min];
                let t = b.binary(
                    &format!("a{i}"),
                    kinds[kind as usize % kinds.len()],
                    Operand::Reg(ra),
                    Operand::Reg(rb),
                );
                pool.push(t);
            }
            BodyOp::Store(a) => {
                let ra = pool[a as usize % pool.len()];
                b.store(y, Operand::Reg(k), 0, Operand::Reg(ra));
            }
        }
    }
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(r.trip)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    g
}

fn run(g: &Graph, len: usize) -> Machine {
    let mut m = Machine::for_graph(g);
    let xs: Vec<f64> = (0..len).map(|i| 0.25 + (i % 17) as f64 * 0.0625).collect();
    m.set_array_f(ArrayId::new(0), &xs);
    m.run(g).expect("program runs");
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 16 } else { 48 }))]

    #[test]
    fn pipelined_random_loops_are_exact(r in recipe()) {
        let g0 = build(&r);
        g0.validate().unwrap();
        let mut g = g0.clone();
        let rep = perfect_pipeline(&mut g, PipelineOptions {
            unwind: 8,
            resources: Resources::vliw(r.fus),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
        });
        g.validate().unwrap();
        let len = (r.trip + 64) as usize;
        let m0 = run(&g0, len);
        let m1 = run(&g, len);
        let repc = EquivReport::compare(&g0, &m0, &m1);
        prop_assert!(repc.is_equal(), "diverged: {repc:?}");
        // A measured CPI exists for reasonable loops.
        prop_assert!(rep.seq_cpi() >= 3.0);
    }

    #[test]
    fn pipelined_random_loops_respect_width(r in recipe()) {
        let mut g = build(&r);
        let rep = perfect_pipeline(&mut g, PipelineOptions {
            unwind: 8,
            resources: Resources::vliw(r.fus),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
        });
        for &row in &rep.steady {
            if g.node_exists(row) {
                prop_assert!(g.node_op_count(row) <= r.fus);
            }
        }
    }
}
