//! Golden-schedule pinning: the optimized scheduler must reproduce the
//! pre-optimization schedules bit for bit.
//!
//! `tests/golden_schedules.json` holds a structural digest (full graph
//! listing + region row order), the steady row count, and the
//! latency-aware model cycles for every machine preset × Livermore
//! kernel, captured from the scheduler *before* the hot-loop rewrite.
//! This test recomputes each cell with the current build and asserts the
//! digest is unchanged — any drift in candidate order, renaming, landing
//! rows, or residue fails loudly.
//!
//! Cells listed in [`WAIVED`] are *deliberately* shifted (the multi-hop
//! hazard backfill pulls ready ops past full intermediate rows on
//! multi-latency machines, which the pinned scheduler could not do) and
//! are instead held to a strictly-no-worse bar: `sched_cycles` and rows
//! must not exceed the pinned values.
//!
//! The full 84-cell grid runs in release builds (CI's golden gate) or
//! when `GOLDEN_FULL` is set; debug test runs cover a three-kernel
//! column of the grid to keep `cargo test` fast.

use grip_bench::golden::{golden_cell, golden_table};
use grip_core::MachineDesc;
use grip_json::Json;
use std::collections::HashMap;

/// (machine, kernel) cells whose schedule the multi-hop hazard backfill
/// deliberately improves past the pinned digest. Each is asserted
/// `sched_cycles`-no-worse (and rows-no-worse) instead of bit-identical.
const WAIVED: &[(&str, &str)] = &[
    ("clustered", "LL2"),
    ("clustered", "LL6"),
    ("clustered", "LL7"),
    ("clustered", "LL9"),
    ("mem_bound", "LL2"),
    ("mem_bound", "LL10"),
    ("mem_bound", "LL13"),
    ("mem_bound", "LL14"),
];

/// Kernels exercised in the fast (debug) configuration: a branchy loop
/// (LL6 has the inner recurrence), a multi-hop-waived column, and a
/// bit-identical column.
const QUICK_KERNELS: &[&str] = &["LL3", "LL6", "LL12"];

#[test]
fn schedules_match_pinned_goldens() {
    let src = include_str!("golden_schedules.json");
    let doc = Json::parse(src).expect("golden json parses");
    let n = doc.get("trip_count").and_then(Json::as_i64).expect("trip_count");
    let mut pinned: HashMap<(String, String), (String, i64, i64)> = HashMap::new();
    for c in doc.get("cells").and_then(Json::as_arr).expect("cells") {
        let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("").to_string();
        let i = |k: &str| c.get(k).and_then(Json::as_i64).unwrap_or(0);
        pinned.insert((s("machine"), s("kernel")), (s("digest"), i("rows"), i("sched_cycles")));
    }
    assert_eq!(pinned.len(), 84, "the pinned grid covers 6 presets x 14 kernels");

    let full = !cfg!(debug_assertions) || std::env::var("GOLDEN_FULL").is_ok();
    let cells = if full {
        golden_table(n, true)
    } else {
        let presets = MachineDesc::presets();
        grip_kernels::kernels()
            .iter()
            .filter(|k| QUICK_KERNELS.contains(&k.name))
            .flat_map(|k| presets.iter().map(move |&d| golden_cell(k, n, d)))
            .collect()
    };
    assert!(!cells.is_empty());

    let mut checked = 0;
    for cell in &cells {
        let key = (cell.machine.clone(), cell.kernel.clone());
        let (digest, rows, cycles) = pinned
            .get(&key)
            .unwrap_or_else(|| {
                panic!("{}/{}: cell not pinned — recapture the goldens", key.0, key.1)
            })
            .clone();
        if WAIVED.contains(&(cell.machine.as_str(), cell.kernel.as_str())) {
            assert!(
                cell.sched_cycles as i64 <= cycles,
                "{}/{}: waived cell regressed sched_cycles {} -> {} (pinned bar)",
                key.0,
                key.1,
                cycles,
                cell.sched_cycles
            );
            assert!(
                cell.rows as i64 <= rows,
                "{}/{}: waived cell regressed rows {} -> {}",
                key.0,
                key.1,
                rows,
                cell.rows
            );
        } else {
            assert_eq!(
                format!("{:016x}", cell.digest),
                digest,
                "{}/{}: schedule digest drifted from the pinned golden \
                 (rows {} -> {}, sched_cycles {} -> {})",
                key.0,
                key.1,
                rows,
                cell.rows,
                cycles,
                cell.sched_cycles
            );
            assert_eq!(cell.rows as i64, rows, "{}/{}: rows", key.0, key.1);
            assert_eq!(cell.sched_cycles as i64, cycles, "{}/{}: sched_cycles", key.0, key.1);
        }
        checked += 1;
    }
    assert_eq!(checked, if full { 84 } else { QUICK_KERNELS.len() * 6 });
}
