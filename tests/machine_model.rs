//! Machine-description subsystem, end to end:
//!
//! * the `uniform(n)` preset must reproduce the seed's flat
//!   `Resources::vliw(n)` machine **bit-for-bit** — identical schedules
//!   and identical cycle counts on every Livermore kernel;
//! * the heterogeneous presets (`clustered`, `mem_bound`, `epic8`) must
//!   schedule LL1–LL14 end to end with VM-verified equivalence to
//!   sequential execution, zero issue-template violations, and steady
//!   rows that fit the template.

use grip::kernels::kernels;
use grip::prelude::*;
use grip_machine::MachineDesc;

fn trip() -> i64 {
    if cfg!(debug_assertions) {
        16
    } else {
        48
    }
}

fn opts(resources: Resources, unwind: usize) -> PipelineOptions {
    PipelineOptions {
        unwind,
        resources,
        fold_inductions: true,
        gap_prevention: true,
        dce: true,
        try_roll: false,
        audit: false,
    }
}

/// Schedule a kernel and return the final graph dump plus the measured
/// execution cycle count on the standard inputs.
fn schedule_and_run(k: &grip::kernels::Kernel, n: i64, resources: Resources) -> (String, u64) {
    let mut g = (k.build)(n);
    perfect_pipeline(&mut g, opts(resources, 6));
    g.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let mut m = Machine::for_graph(&g);
    (k.init)(&g, &mut m, n);
    let stats = m.run(&g).unwrap_or_else(|e| panic!("{}: {e}", k.name));
    (grip::ir::print::dump(&g), stats.cycles)
}

/// Equivalence property: for every kernel and width, the `uniform(n)`
/// preset routed through the machine-description layer produces the
/// *identical* schedule (same dump) and identical cycle count as the
/// flat `Resources::vliw(n)` constructor.
#[test]
fn uniform_preset_is_bit_for_bit_the_flat_machine() {
    let n = trip();
    for k in kernels() {
        for width in [2usize, 4, 8] {
            let (dump_vliw, cycles_vliw) = schedule_and_run(k, n, Resources::vliw(width));
            let (dump_uni, cycles_uni) =
                schedule_and_run(k, n, Resources::machine(MachineDesc::uniform(width)));
            // A hand-built flat description must also agree: width-only
            // cap, uncapped classes, unit latencies.
            let handmade = MachineDesc {
                name: "handmade",
                width,
                cjs: grip_machine::UNCAPPED,
                class_slots: [grip_machine::UNCAPPED; grip_machine::FuClass::COUNT],
                latency: grip_machine::LatencyTable::UNIT,
            };
            let (dump_hand, cycles_hand) = schedule_and_run(k, n, Resources::machine(handmade));
            assert_eq!(
                dump_vliw, dump_uni,
                "{} @{width}: uniform preset diverged from vliw",
                k.name
            );
            assert_eq!(cycles_vliw, cycles_uni, "{} @{width}: cycle count", k.name);
            assert_eq!(dump_vliw, dump_hand, "{} @{width}: handmade flat desc", k.name);
            assert_eq!(cycles_vliw, cycles_hand, "{} @{width}: handmade cycles", k.name);
        }
    }
}

/// Under the uniform model the latency-aware simulator charges no stalls
/// and reports the plain cycle count.
#[test]
fn uniform_model_run_has_no_stalls() {
    let n = trip();
    for k in kernels().iter().take(4) {
        let desc = MachineDesc::uniform(4);
        let mut g = (k.build)(n);
        perfect_pipeline(&mut g, opts(Resources::machine(desc), 6));
        let mut m0 = Machine::for_graph(&g);
        (k.init)(&g, &mut m0, n);
        let plain = m0.run(&g).unwrap();
        let mut m1 = Machine::for_graph(&g);
        (k.init)(&g, &mut m1, n);
        let model = m1.run_model(&g, &desc).unwrap();
        assert_eq!(model.stall_cycles, 0, "{}", k.name);
        assert_eq!(model.template_violations, 0, "{}", k.name);
        assert_eq!(model.total_cycles(), plain.cycles, "{}", k.name);
    }
}

/// Acceptance: every non-uniform preset schedules every kernel end to
/// end, the result is VM-verified equivalent to sequential execution,
/// and the schedule honours the issue template it was built against.
#[test]
fn heterogeneous_presets_schedule_all_kernels_exactly() {
    let n = trip();
    for desc in [MachineDesc::clustered(), MachineDesc::mem_bound(), MachineDesc::epic8()] {
        for k in kernels() {
            let g0 = (k.build)(n);
            let mut g = g0.clone();
            let rep = perfect_pipeline(&mut g, opts(Resources::machine(desc), 6));
            g.validate().unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, desc.name));

            // Bitwise equivalence against the sequential original.
            let mut m0 = Machine::for_graph(&g0);
            (k.init)(&g0, &mut m0, n);
            m0.run(&g0).unwrap();
            let mut m1 = Machine::for_graph(&g);
            (k.init)(&g, &mut m1, n);
            let model = m1
                .run_model(&g, &desc)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, desc.name));
            let eq = EquivReport::compare(&g0, &m0, &m1);
            assert!(eq.is_equal(), "{} on {}: diverged: {eq:?}", k.name, desc.name);
            assert_eq!(
                model.template_violations, 0,
                "{} on {}: schedule violates its own issue template",
                k.name, desc.name
            );

            // Steady rows fit the template statically, too.
            for &row in &rep.steady {
                if g.node_exists(row) {
                    assert!(
                        desc.fits(&g, row),
                        "{} on {}: steady row {row} breaks the template",
                        k.name,
                        desc.name
                    );
                }
            }
        }
    }
}

/// The class caps bind: on the single-port `mem_bound` machine no steady
/// row of a streaming kernel carries two memory operations, even though
/// eight total slots are open.
#[test]
fn mem_bound_port_limits_memory_issue() {
    let desc = MachineDesc::mem_bound();
    let k = kernels().iter().find(|k| k.name == "LL1").unwrap();
    let mut g = (k.build)(trip());
    let rep = perfect_pipeline(&mut g, opts(Resources::machine(desc), 6));
    let mut any_mem = false;
    for &row in &rep.steady {
        if !g.node_exists(row) {
            continue;
        }
        let mems = g.node_ops(row).iter().filter(|&&(_, o)| g.op(o).kind.is_mem()).count();
        assert!(mems <= 1, "row {row} issues {mems} memory ops on a single port");
        any_mem |= mems == 1;
    }
    assert!(any_mem, "LL1 must stream through the port");
}

/// Latency-aware scheduling pays off: on a multi-cycle machine the GRiP
/// schedule built *for* that machine never runs slower under the model
/// than the sequential program, and the hazard guard keeps stalls below
/// the sequential program's own stall bill.
#[test]
fn latency_model_speedup_is_real() {
    let desc = MachineDesc::epic8();
    let n = trip();
    for name in ["LL1", "LL7", "LL12"] {
        let k = kernels().iter().find(|k| k.name == name).unwrap();
        let g0 = (k.build)(n);
        let mut g = g0.clone();
        perfect_pipeline(&mut g, opts(Resources::machine(desc), 8));
        let mut m0 = Machine::for_graph(&g0);
        (k.init)(&g0, &mut m0, n);
        let seq = m0.run_model(&g0, &desc).unwrap();
        let mut m1 = Machine::for_graph(&g);
        (k.init)(&g, &mut m1, n);
        let sched = m1.run_model(&g, &desc).unwrap();
        assert!(
            sched.total_cycles() < seq.total_cycles(),
            "{name}: scheduled {} vs sequential {}",
            sched.total_cycles(),
            seq.total_cycles()
        );
    }
}
