//! Mutation-based property tests for the static auditor (`grip-audit`):
//! corrupt verified schedules with seeded mutations and check that the
//! auditor catches, by pure dataflow analysis, **every** corruption the
//! VM can detect by executing the schedule — no false negatives over the
//! corpus — while agreeing with the VM that the pristine schedules are
//! clean.
//!
//! The mutation operators are chosen so that each targets one auditor
//! check and so that every VM-visible effect they can produce is one the
//! auditor's static analyses model:
//!
//! * **drop-pad-row** deletes an empty (hazard-padding) row, shrinking a
//!   latency gap → GA002 / model interlock stalls;
//! * **clone-overfill** duplicates an op into its own row with a fresh
//!   destination, a pure resource mutation → GA003 / template violations;
//! * **clone-dup-write** duplicates an op into its own row keeping its
//!   destination → GA004 dup-write / `Graph::validate` path rejection;
//! * **sink-def** moves the sole definition of a still-read register
//!   into a reader's row → GA004 use-before-def / stale-read divergence;
//! * **hoist-load** moves a load up into its predecessor row when that
//!   row holds a store the load flow-depends on (and defines none of the
//!   load's address registers) → GA001 / stale-value divergence.
//!
//! The auditor is deliberately conservative: it may flag a mutant whose
//! corruption happens to be invisible on the executed paths (a pad only
//! needed on a never-taken exit, say). The property enforced here is the
//! safety direction — `VM rejects ⟹ audit flags` — plus exact agreement
//! on the unmutated schedules.
//!
//! Mutations that would corrupt a schedule in ways the auditor does not
//! model (reordering conditional jumps, moving stores across exit paths,
//! sliding defs across the back edge so readers see a *defined but
//! stale* register) are intentionally outside the operator set: the
//! auditor proves dependence, latency, resource, and definedness safety,
//! not full semantic equivalence — that is the VM differ's job (see
//! README "Static verification").

use grip::ir::TreePath;
use grip::pipeline::{prepare, schedule_window};
use grip::prelude::*;

/// Deterministic splitmix64 generator (same idiom as `prop_hazards`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

/// Every placed non-cj op in reachable rows, as `(row, op)`.
fn placed_ops(g: &Graph) -> Vec<(NodeId, OpId)> {
    let mut out = Vec::new();
    for n in g.reachable() {
        for &(_, op) in g.node_ops(n) {
            if g.op(op).kind != OpKind::CondJump {
                out.push((n, op));
            }
        }
    }
    out
}

/// Number of placed ops defining register `r`.
fn def_count(g: &Graph, r: RegId) -> usize {
    g.reachable()
        .into_iter()
        .map(|n| g.node_ops(n).iter().filter(|&&(_, op)| g.op(op).dest == Some(r)).count())
        .sum()
}

/// Which corruption a mutation operator introduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    DropPadRow,
    CloneOverfill,
    CloneDupWrite,
    SinkDef,
    HoistLoad,
}

const OPS: [Op; 5] =
    [Op::DropPadRow, Op::CloneOverfill, Op::CloneDupWrite, Op::SinkDef, Op::HoistLoad];

/// Apply `op` to `g` if it has a candidate site; returns a description
/// of what was corrupted, or `None` when the schedule offers no site
/// (e.g. no pad rows on a unit-latency machine).
fn mutate(g: &mut Graph, ddg: &Ddg, op: Op, rng: &mut Rng) -> Option<String> {
    match op {
        Op::DropPadRow => {
            let pads: Vec<NodeId> = g
                .reachable()
                .into_iter()
                .filter(|&n| {
                    n != g.entry
                        && g.node_op_count(n) == 0
                        && g.node_cj_count(n) == 0
                        && g.unique_successors(n) != vec![n]
                })
                .collect();
            let n = *pads.get(rng.below(pads.len().max(1) as u64) as usize)?;
            g.delete_empty_node(n);
            Some(format!("dropped pad row {n}"))
        }
        Op::CloneOverfill => {
            let all = placed_ops(g);
            let cands: Vec<_> =
                all.into_iter().filter(|&(_, op)| g.op(op).dest.is_some()).collect();
            if cands.is_empty() {
                return None;
            }
            let (n, op) = rng.pick(&cands);
            let c = g.dup_op(op);
            let fresh = g.fresh_reg();
            g.op_mut(c).dest = Some(fresh);
            g.insert_op_at(n, TreePath::ROOT, c);
            Some(format!("cloned {op} into row {n} with fresh dest"))
        }
        Op::CloneDupWrite => {
            let all = placed_ops(g);
            let cands: Vec<_> =
                all.into_iter().filter(|&(_, op)| g.op(op).dest.is_some()).collect();
            if cands.is_empty() {
                return None;
            }
            let (n, op) = rng.pick(&cands);
            let c = g.dup_op(op);
            g.insert_op_at(n, TreePath::ROOT, c);
            Some(format!("cloned {op} into row {n} (duplicate write)"))
        }
        Op::SinkDef => {
            // Sink the *sole* definition of a register into the row of
            // one of its readers: reads fetch at row entry under VLIW
            // semantics, so every entry path now reaches the reader with
            // the register undefined. The sole-def restriction matters
            // twice over — deleting or displacing one def of a pair
            // leaves readers *defined but stale* (semantic breakage the
            // dataflow auditor deliberately does not model), and a
            // never-defined register would be exempted as an external
            // input.
            let mut cands = Vec::new();
            for (n, op) in placed_ops(g) {
                let Some(d) = g.op(op).dest else { continue };
                if def_count(g, d) != 1 {
                    continue;
                }
                for m in g.reachable() {
                    if m != n
                        && g.node_ops(m)
                            .iter()
                            .any(|&(_, q)| g.op(q).src.iter().any(|s| s.reads(d)))
                    {
                        cands.push((n, op, m));
                    }
                }
            }
            if cands.is_empty() {
                return None;
            }
            let (n, op, m) = rng.pick(&cands);
            g.remove_op_from(n, op);
            g.insert_op_at(m, TreePath::ROOT, op);
            Some(format!("sank sole def {op} from row {n} into reader row {m}"))
        }
        Op::HoistLoad => {
            // A load hoisted into its (unique) predecessor row, where a
            // store it flow-depends on sits — and where none of the
            // load's address registers are redefined, so the only
            // corruption the hoist introduces is the mem-order one.
            let preds = g.predecessors();
            let mut cands = Vec::new();
            for (n, load) in placed_ops(g) {
                let lk = g.op(load);
                let OpKind::Load(_) = lk.kind else { continue };
                let Some(&[p]) = preds.get(&n).map(|v| &v[..]) else { continue };
                if p == n {
                    continue;
                }
                let addr_regs: Vec<RegId> = lk.src.iter().filter_map(|s| s.reg()).collect();
                let mut store_conflict = false;
                let mut addr_redefined = false;
                for &(_, q) in g.node_ops(p) {
                    let qo = g.op(q);
                    if qo.kind.is_store() && ddg.mem_dep(qo.orig, lk.orig) {
                        store_conflict = true;
                    }
                    if qo.dest.is_some_and(|d| addr_regs.contains(&d)) {
                        addr_redefined = true;
                    }
                }
                if store_conflict && !addr_redefined {
                    cands.push((n, load, p));
                }
            }
            if cands.is_empty() {
                return None;
            }
            let (n, load, p) = rng.pick(&cands);
            g.remove_op_from(n, load);
            g.insert_op_at(p, TreePath::ROOT, load);
            Some(format!("hoisted load {load} from row {n} into conflicting row {p}"))
        }
    }
}

/// The execution oracle: does the VM (validator + timing model + state
/// differ) reject this schedule of `g0`?
fn vm_rejects(
    g0: &Graph,
    m0: &Machine,
    g: &Graph,
    desc: &MachineDesc,
    init: fn(&Graph, &mut Machine, i64),
    n: i64,
) -> bool {
    if g.validate().is_err() {
        return true;
    }
    let mut m1 = Machine::for_graph(g);
    init(g, &mut m1, n);
    match m1.run_model(g, desc) {
        Err(_) => true,
        Ok(stats) => {
            stats.stall_cycles > 0
                || stats.template_violations > 0
                || !EquivReport::compare(g0, m0, &m1).is_equal()
        }
    }
}

/// Corpus-wide audit/VM agreement: pristine schedules are clean under
/// both verifiers, and every mutant the VM rejects is statically flagged.
#[test]
fn auditor_catches_every_vm_detectable_corruption() {
    let n: i64 = 8;
    let presets = [MachineDesc::uniform(4), MachineDesc::mem_bound(), MachineDesc::epic8()];
    let mut mutants = 0usize;
    let mut rejected = 0usize;
    let mut flagged_only = 0usize;
    let mut caught_by_op = [0usize; OPS.len()];

    for desc in presets {
        for k in grip::kernels::kernels() {
            let label = format!("{} on {}", k.name, desc.name);
            let g0 = (k.build)(n);
            let mut g = g0.clone();
            let prep = prepare(&mut g, 4, true);
            let ddg = prep.ddg;
            let rep = schedule_window(
                &mut g,
                prep.window,
                &ddg,
                PipelineOptions {
                    resources: Resources::machine(desc),
                    audit: true,
                    try_roll: false,
                    ..Default::default()
                },
            );

            // Agreement on the clean original, both directions.
            let orig = rep.audit.expect("audit requested");
            assert!(orig.is_clean(), "{label}: auditor flags a verified schedule: {orig}");
            let mut m0 = Machine::for_graph(&g0);
            (k.init)(&g0, &mut m0, n);
            m0.run(&g0).unwrap_or_else(|e| panic!("{label}: sequential: {e}"));
            assert!(
                !vm_rejects(&g0, &m0, &g, &desc, k.init, n),
                "{label}: VM rejects the pristine schedule"
            );

            // One mutant per operator per cell (when a site exists).
            for (oi, op) in OPS.into_iter().enumerate() {
                let mut rng = Rng(0xabad1dea ^ ((oi as u64) << 48) ^ ddg.order().len() as u64);
                let mut gm = g.clone();
                let Some(what) = mutate(&mut gm, &ddg, op, &mut rng) else { continue };
                mutants += 1;
                let audit_flags = !audit_schedule(&gm, &ddg, &desc).is_clean();
                if vm_rejects(&g0, &m0, &gm, &desc, k.init, n) {
                    rejected += 1;
                    assert!(
                        audit_flags,
                        "{label}: FALSE NEGATIVE — VM rejects mutant ({what}) \
                         but the audit is clean"
                    );
                    caught_by_op[oi] += 1;
                } else if audit_flags {
                    // Conservative direction: statically unsafe, but the
                    // corruption is invisible on the executed paths.
                    flagged_only += 1;
                }
            }
        }
    }

    // The property is only meaningful if the corpus actually exercises
    // it: most mutants must be VM-visible, and every operator class must
    // have produced at least one corruption that both verifiers caught.
    assert!(mutants >= 100, "corpus too small: {mutants} mutants");
    assert!(
        rejected * 2 >= mutants,
        "corpus too benign: only {rejected}/{mutants} mutants VM-rejected"
    );
    for (oi, caught) in caught_by_op.iter().enumerate() {
        assert!(
            *caught > 0,
            "operator {:?} never produced a VM-rejected, audit-flagged mutant",
            OPS[oi]
        );
    }
    println!(
        "prop_audit: {mutants} mutants, {rejected} VM-rejected (all audit-flagged), \
         {flagged_only} flagged-only (conservative), per-op {caught_by_op:?}"
    );
}
