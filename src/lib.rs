//! # grip — Global Resource-constrained Percolation scheduling
//!
//! A complete reproduction of Nicolau & Novack, *An Efficient Global
//! Resource Constrained Technique for Exploiting Instruction Level
//! Parallelism* (UC Irvine ICS TR 92-08, ICPP 1992), as a Rust library
//! stack:
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | VLIW program-graph IR: instruction trees (IBM model), operations, the sequential-program builder |
//! | [`machine`] | heterogeneous machine descriptions: FU classes, per-class slots, latencies, issue templates, presets (`uniform`, `clustered`, `mem_bound`, `epic8`) |
//! | [`vm`] | the VLIW machine simulator (fetch-all / commit-on-selected-path), plus latency-aware model runs with interlock-stall accounting |
//! | [`analysis`] | liveness over instruction trees, affine address disambiguation, dependence graph, §3.4 ranks |
//! | [`percolate`] | Percolation Scheduling core: `move-op`, `move-cj`, renaming, copy bypass, redundancy removal |
//! | [`core`] | **the paper's contribution**: the GRiP scheduler with Moveable-ops, resource barriers, and §3.3 gap prevention — class- and latency-aware via [`machine`] |
//! | [`pipeline`] | Perfect Pipelining: unwinding, pattern detection, loop re-rolling with register rotation |
//! | [`baselines`] | Unifiable-ops scheduling (§3.1) and POST (§4) |
//! | [`kernels`] | the Livermore Loops LL1–LL14 with native references |
//! | [`json`] | dependency-free JSON writer + parser (the wire format) |
//! | [`service`] | the sharded scheduling service: content-addressed schedule/DDG caches, `Service::submit`, JSON-lines protocol (`grip-serve`/`grip-client`) |
//!
//! ## Quickstart
//!
//! ```
//! use grip::prelude::*;
//!
//! // saxpy-like loop: y[k] += 2.5 * x[k]
//! let mut b = ProgramBuilder::new();
//! let x = b.array("x", 80);
//! let y = b.array("y", 80);
//! let k = b.named_reg("k");
//! b.const_i(k, 0);
//! b.begin_loop();
//! let t = b.load("t", x, Operand::Reg(k), 0);
//! let u = b.binary("u", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.5)));
//! let w = b.load("w", y, Operand::Reg(k), 0);
//! let v = b.binary("v", OpKind::Add, Operand::Reg(u), Operand::Reg(w));
//! b.store(y, Operand::Reg(k), 0, Operand::Reg(v));
//! b.iadd_imm(k, k, 1);
//! let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(64)));
//! b.end_loop(c);
//! let mut g = b.finish();
//! g.live_out = vec![k];
//!
//! // Pipeline for a 4-wide VLIW.
//! let report = perfect_pipeline(&mut g, PipelineOptions {
//!     resources: Resources::vliw(4),
//!     ..Default::default()
//! });
//! let speedup = report.speedup().expect("loop pipelines");
//! assert!(speedup > 3.0, "got {speedup}");
//! ```
//!
//! ## Scheduling for a heterogeneous machine
//!
//! The same pipeline runs against any [`machine::MachineDesc`] — e.g. a
//! wide machine with a single memory port and multi-cycle latencies —
//! and the simulator validates the schedule under the *same* model
//! ([`vm::Machine::run_model`]): interlock stalls are charged, issue
//! templates are checked.
//!
//! ```
//! use grip::prelude::*;
//!
//! let k = grip::kernels::kernels().iter().find(|k| k.name == "LL3").unwrap();
//! let g0 = (k.build)(32);
//! let mut g = g0.clone();
//! let desc = MachineDesc::mem_bound();
//! perfect_pipeline(&mut g, PipelineOptions {
//!     resources: Resources::machine(desc),
//!     unwind: 6,
//!     ..Default::default()
//! });
//! let mut m = Machine::for_graph(&g);
//! (k.init)(&g, &mut m, 32);
//! let stats = m.run_model(&g, &desc).expect("schedule runs");
//! assert_eq!(stats.template_violations, 0);
//! ```

#![forbid(unsafe_code)]

pub use grip_analysis as analysis;
pub use grip_audit as audit;
pub use grip_baselines as baselines;
pub use grip_bounds as bounds;
pub use grip_core as core;
pub use grip_ir as ir;
pub use grip_json as json;
pub use grip_kernels as kernels;
pub use grip_machine as machine;
pub use grip_obs as obs;
pub use grip_percolate as percolate;
pub use grip_pipeline as pipeline;
pub use grip_service as service;
pub use grip_vm as vm;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use grip_analysis::{Ddg, RankTable};
    pub use grip_audit::{audit_schedule, AuditCode, AuditReport, Diagnostic};
    pub use grip_baselines::{post_pipeline, schedule_unifiable, PostOptions};
    pub use grip_bounds::{BindingConstraint, BoundCertificate};
    pub use grip_core::{schedule_region, GripConfig, Resources};
    pub use grip_ir::{
        ArrayId, Graph, NodeId, OpId, OpKind, Operand, Operation, ProgramBuilder, RegId, Value,
    };
    pub use grip_machine::{FuClass, LatencyTable, MachineDesc, MachineModel};
    pub use grip_percolate::Ctx;
    pub use grip_pipeline::{perfect_pipeline, PipelineOptions, PipelineReport};
    pub use grip_service::{
        MachineSpec, ScheduleRequest, ScheduleResponse, Service, ServiceConfig,
    };
    pub use grip_vm::{EquivReport, Machine, ModelRunStats};
}
