//! Perfect Pipelining end to end: converge a loop to its steady pattern,
//! re-roll the pattern into a real loop with a register rotation block,
//! and execute the rolled loop.
//!
//! Run with: `cargo run --example perfect_pipelining`

use grip::prelude::*;

fn main() {
    // A first-order recurrence plus independent work (the paper's running
    // example shape): unfolded inductions keep the pattern operand-periodic
    // so the loop can be *materially* re-rolled.
    let n = 200i64;
    let mut b = ProgramBuilder::new();
    let yarr = b.array("y", (n + 16) as usize);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    b.emit(Operation::new(
        OpKind::Mul,
        Some(acc),
        vec![Operand::Reg(acc), Operand::Imm(Value::F(0.9995))],
    ));
    let t = b.binary("b", OpKind::Add, Operand::Reg(acc), Operand::Imm(Value::F(2.0)));
    let u = b.binary("c", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(3.0)));
    b.store(yarr, Operand::Reg(k), 0, Operand::Reg(u));
    b.iadd_imm(k, k, 1);
    let c = b.binary("cc", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    let g0 = g.clone();

    let report = perfect_pipeline(
        &mut g,
        PipelineOptions {
            unwind: 6,
            resources: Resources::UNLIMITED,
            fold_inductions: false,
            gap_prevention: true,
            dce: true,
            try_roll: true,
            audit: false,
        },
    );
    let pat = report.pattern.expect("converges");
    let rolled = report.rolled.as_ref().expect("roll requested").as_ref().expect("rolls");
    println!(
        "pattern: {} row(s) advancing {} iteration(s) per traversal (CPI {:.2})",
        pat.period_rows, pat.period_iters, pat.cpi
    );
    println!(
        "rolled loop: head {}, {} rotation copies in {} row(s) on the back edge",
        rolled.body_head, rolled.rotation_copies, rolled.rotation_rows
    );

    let mut m0 = Machine::for_graph(&g0);
    let s0 = m0.run(&g0).unwrap();
    let mut m1 = Machine::for_graph(&g);
    let s1 = m1.run(&g).unwrap();
    assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());
    println!(
        "simulated {} -> {} cycles (speedup {:.2}); outputs bitwise identical",
        s0.cycles,
        s1.cycles,
        s0.cycles as f64 / s1.cycles as f64
    );
}
