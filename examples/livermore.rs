//! Run any Livermore kernel through the full GRiP and POST stacks and
//! compare against the paper's Table 1 row.
//!
//! Run with: `cargo run --release --example livermore -- LL3 8`

use grip::baselines::{post_pipeline, PostOptions};
use grip::kernels::{default_init, kernels};
use grip::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("LL1");
    let fus: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let n = 100i64;

    let Some(k) = kernels().iter().find(|k| k.name.eq_ignore_ascii_case(name)) else {
        eprintln!("unknown kernel {name}; use LL1..LL14");
        std::process::exit(2);
    };
    println!("{}: {} [{}]", k.name, k.description, k.class);

    let g0 = (k.build)(n);
    let mut g_grip = g0.clone();
    let grip = perfect_pipeline(
        &mut g_grip,
        PipelineOptions { resources: Resources::vliw(fus), unwind: 3 * fus, ..Default::default() },
    );
    let mut g_post = g0.clone();
    let post = post_pipeline(&mut g_post, PostOptions::vliw(3 * fus, fus));

    let idx = match fus {
        2 => Some(0),
        4 => Some(1),
        8 => Some(2),
        _ => None,
    };
    println!("\n{fus} functional units:");
    println!(
        "  GRiP speedup {:.2}{}",
        grip.speedup().unwrap_or(f64::NAN),
        idx.map(|i| format!("   (paper: {:.1})", k.paper_grip[i])).unwrap_or_default()
    );
    println!(
        "  POST speedup {:.2}{}",
        post.speedup().unwrap_or(f64::NAN),
        idx.map(|i| format!("   (paper: {:.1})", k.paper_post[i])).unwrap_or_default()
    );

    // Verify both against the sequential original.
    for (label, gt) in [("GRiP", &g_grip), ("POST", &g_post)] {
        let mut m0 = Machine::for_graph(&g0);
        default_init(&g0, &mut m0, n);
        m0.run(&g0).unwrap();
        let mut m1 = Machine::for_graph(gt);
        default_init(gt, &mut m1, n);
        m1.run(gt).unwrap();
        let ok = EquivReport::compare(&g0, &m0, &m1).is_equal();
        println!("  {label} simulation: {}", if ok { "bitwise identical" } else { "MISMATCH" });
        assert!(ok);
    }
}
