//! Quickstart: build a loop, pipeline it with GRiP for a 4-wide VLIW,
//! verify semantics with the simulator, and inspect the schedule.
//!
//! Run with: `cargo run --example quickstart`

use grip::prelude::*;

fn main() {
    // y[k] = y[k] + 2.5*x[k] for k in 0..64 — a classic saxpy loop.
    let n = 64i64;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", (n + 16) as usize);
    let y = b.array("y", (n + 16) as usize);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let t = b.load("t", x, Operand::Reg(k), 0);
    let u = b.binary("u", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.5)));
    let w = b.load("w", y, Operand::Reg(k), 0);
    let v = b.binary("v", OpKind::Add, Operand::Reg(u), Operand::Reg(w));
    b.store(y, Operand::Reg(k), 0, Operand::Reg(v));
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![k];
    let g0 = g.clone();

    // Pipeline for 4 functional units.
    let report = perfect_pipeline(
        &mut g,
        PipelineOptions { resources: Resources::vliw(4), ..Default::default() },
    );
    println!("sequential cycles/iteration : {:.1}", report.seq_cpi());
    println!("pipelined  cycles/iteration : {:.2}", report.pipelined_cpi().unwrap());
    println!("loop-body speedup           : {:.2}", report.speedup().unwrap());
    println!(
        "scheduler: {} hops, {} renames, {} dead ops removed",
        report.stats.hops, report.stats.renames, report.stats.dce_removed
    );

    // The steady-state rows, paper-style.
    println!("\nsteady rows (iterations in columns):");
    let iters = report.window.iterations as usize;
    let tab =
        grip::ir::print::tableau(&g, &report.steady[..report.steady.len().min(14)], iters.min(6));
    print!("{}", grip::ir::print::render_tableau(&tab, iters.min(6)));

    // Prove the transformation exact: run both programs on the same input.
    let setup = |m: &mut Machine| {
        let xs: Vec<f64> = (0..n + 16).map(|i| (i as f64).cos()).collect();
        let ys: Vec<f64> = (0..n + 16).map(|i| i as f64 * 0.125).collect();
        m.set_array_f(x, &xs);
        m.set_array_f(y, &ys);
    };
    let mut m0 = Machine::for_graph(&g0);
    setup(&mut m0);
    let s0 = m0.run(&g0).expect("sequential runs");
    let mut m1 = Machine::for_graph(&g);
    setup(&mut m1);
    let s1 = m1.run(&g).expect("pipelined runs");
    assert!(EquivReport::compare(&g0, &m0, &m1).is_equal(), "must be bitwise identical");
    println!(
        "\nsimulated: {} -> {} cycles (measured speedup {:.2}), outputs bitwise identical",
        s0.cycles,
        s1.cycles,
        s0.cycles as f64 / s1.cycles as f64
    );
}
