//! Sweep machine widths (and a bounded branch-tree ablation) over one
//! kernel to see where its dependence structure saturates the speedup —
//! the §1 argument for making resource constraints part of scheduling.
//!
//! Run with: `cargo run --release --example custom_machine -- LL5`

use grip::kernels::kernels;
use grip::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("LL5");
    let k = kernels().iter().find(|k| k.name.eq_ignore_ascii_case(name)).expect("LL1..LL14");
    println!("{}: {} [{}]\n", k.name, k.description, k.class);
    println!("{:<6} {:>10} {:>10}", "FUs", "CPI", "speedup");
    for fus in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let mut g = (k.build)(100);
        let rep = perfect_pipeline(
            &mut g,
            PipelineOptions {
                unwind: (2 * fus).clamp(8, 20),
                resources: Resources::vliw(fus),
                ..Default::default()
            },
        );
        println!(
            "{:<6} {:>10.2} {:>10.2}",
            fus,
            rep.pipelined_cpi().unwrap_or(f64::NAN),
            rep.speedup().unwrap_or(f64::NAN)
        );
    }

    // Ablation: a machine with only one conditional jump per instruction
    // cannot overlap the unwound loop-control branches.
    println!("\nbranch-tree ablation at 8 FUs:");
    for cjs in [usize::MAX, 2, 1] {
        let mut g = (k.build)(100);
        let rep = perfect_pipeline(
            &mut g,
            PipelineOptions {
                unwind: 12,
                resources: Resources::with_limits(8, cjs),
                ..Default::default()
            },
        );
        let label =
            if cjs == usize::MAX { "tree (unbounded)".into() } else { format!("{cjs} cj/instr") };
        println!("  {:<18} speedup {:.2}", label, rep.speedup().unwrap_or(f64::NAN));
    }
}
