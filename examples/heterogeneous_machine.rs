//! Schedule LL3 (inner product) for a memory-bound cluster and compare it
//! with the flat machines of the paper: the machine-description layer
//! exposes exactly the bottlenecks the scalar `fus` model cannot see.
//!
//! `mem_bound` has eight issue slots — on the flat model that looks like
//! an 8-wide machine — but a single 3-cycle memory port. LL3 streams one
//! load per iteration through its reduction, so the port (not the width)
//! sets the steady-state throughput, and the latency-aware simulator
//! charges interlock stalls that the unit-cycle model hides.
//!
//! Run with: `cargo run --release --example heterogeneous_machine`

use grip::kernels::kernels;
use grip::prelude::*;

fn main() {
    let k = kernels().iter().find(|k| k.name == "LL3").unwrap();
    let n = 100i64;
    println!("{}: {} [{}]\n", k.name, k.description, k.class);

    let machines = [
        MachineDesc::uniform(8),
        MachineDesc::mem_bound(),
        MachineDesc::clustered(),
        MachineDesc::epic8(),
    ];
    println!(
        "{:<28} {:>9} {:>11} {:>8} {:>9} {:>6}",
        "machine", "seq cyc", "sched cyc", "stalls", "speedup", "ok"
    );
    for desc in machines {
        let g0 = (k.build)(n);
        let mut g = g0.clone();
        perfect_pipeline(
            &mut g,
            PipelineOptions {
                unwind: 8,
                resources: Resources::machine(desc),
                ..Default::default()
            },
        );

        // Both programs run under the same latency model; equivalence is
        // checked bitwise on all observable state.
        let mut m0 = Machine::for_graph(&g0);
        (k.init)(&g0, &mut m0, n);
        let seq = m0.run_model(&g0, &desc).expect("sequential runs");
        let mut m1 = Machine::for_graph(&g);
        (k.init)(&g, &mut m1, n);
        let sched = m1.run_model(&g, &desc).expect("schedule runs");
        let ok = EquivReport::compare(&g0, &m0, &m1).is_equal() && sched.template_violations == 0;

        println!(
            "{:<28} {:>9} {:>11} {:>8} {:>9.2} {:>6}",
            desc.to_string(),
            seq.total_cycles(),
            sched.total_cycles(),
            sched.stall_cycles,
            seq.total_cycles() as f64 / sched.total_cycles() as f64,
            if ok { "yes" } else { "NO" },
        );
        assert!(ok, "schedule must stay exact and template-clean");
    }

    println!(
        "\nThe flat 8-wide view and mem_bound share a width, but the single\n\
         memory port and 3-cycle loads cap LL3's reduction: the description\n\
         layer turns 'how many slots' into 'which slots, how long'."
    );
}
