//! Drive the scheduling service end to end: build a [`Service`], submit a
//! batch across machines, read the verified measurements, watch the
//! content-addressed caches absorb a repeat of the same work — then read
//! the telemetry the run left behind: the flight-recorder journal, the
//! slow-request captures, the rolling-window stats, and the queue
//! metrics.
//!
//! Run with: `cargo run --release --example service_quickstart`

use grip::service::{CacheStatus, MachineSpec, ScheduleRequest, Service, ServiceConfig};

fn main() {
    // Telemetry setup, all optional and observation-only: baseline the
    // rolling window before any work so the windowed stats at the end
    // cover the whole run, and ask the flight recorder to retain full
    // detail (span tree + pass counters) for any request over 25 ms —
    // cold schedules will cross that, cache hits never will.
    grip::obs::window::global().tick_registry(grip::obs::global());
    grip::obs::events::global().set_slow_threshold_ns(25_000_000);

    // A service with default sizing: one worker shard per core (max 8),
    // per-shard DDG + schedule caches.
    let service = Service::new(ServiceConfig::default());
    println!("service up: {} shards\n", service.shards());

    // One batch: three kernels × three machines at trip count 64.
    let reqs: Vec<ScheduleRequest> = ["LL1", "LL5", "LL12"]
        .iter()
        .flat_map(|k| {
            ["uniform4", "clustered", "epic8"]
                .iter()
                .map(|m| ScheduleRequest::new(k, 64, MachineSpec::Preset(m.to_string())))
        })
        .collect();

    println!(
        "{:<6} {:<10} {:>5} {:>9} {:>9} {:>8} {:>8}  cache",
        "loop", "machine", "rows", "seq cyc", "sched cyc", "speedup", "wall us"
    );
    let responses = service.submit_batch(reqs.clone());
    for r in &responses {
        assert!(r.ok, "{}: {:?}", r.kernel, r.error);
        assert!(r.verified, "every schedule is VM-verified against the sequential program");
        assert_eq!(r.sched_stalls, 0, "schedules are stall-free by construction");
        println!(
            "{:<6} {:<10} {:>5} {:>9} {:>9} {:>8.2} {:>8.1}  {}",
            r.kernel,
            r.machine,
            r.schedule_rows,
            r.seq_cycles,
            r.sched_cycles,
            r.speedup,
            r.wall_ns as f64 / 1000.0,
            r.cache.as_str(),
        );
    }

    // The same batch again: served from the schedule cache, bit-identical.
    let again = service.submit_batch(reqs);
    println!();
    for (cold, hot) in responses.iter().zip(&again) {
        assert_eq!(hot.cache, CacheStatus::Hit);
        assert!(hot.bits_eq(cold), "cache hits are bit-identical to cold runs");
        println!(
            "{:<6} {:<10} repeat: {} in {:.1} us (cold took {:.1} us)",
            hot.kernel,
            hot.machine,
            hot.cache.as_str(),
            hot.wall_ns as f64 / 1000.0,
            cold.wall_ns as f64 / 1000.0
        );
    }

    let stats = service.stats();
    println!("\nservice stats: {}", stats.to_json().line());

    // --- Telemetry walkthrough -------------------------------------

    // 1. The flight recorder journaled every request: identity, cache
    //    status, the enqueue -> dequeue -> finish timeline, and the
    //    per-stage breakdown. The journal is a bounded ring, so this is
    //    safe to leave on in production.
    let recorder = grip::obs::events::global();
    println!("\nflight journal ({} recorded), three most recent:", recorder.total_recorded());
    for rec in recorder.recent(3) {
        println!(
            "  {:<6} {:<10} {:<7} queued {:>9.1} us, served {:>9.1} us",
            rec.kernel,
            rec.machine,
            rec.cache,
            rec.queue_wait_ns as f64 / 1000.0,
            rec.wall_ns as f64 / 1000.0,
        );
    }

    // 2. Requests over the slow threshold kept their full span list and
    //    scheduler pass counters — enough to explain *why* one request
    //    was slow long after it happened.
    let slow = recorder.slow(1);
    if let Some(rec) = slow.first() {
        let detail = rec.slow.as_ref().expect("slow records retain their capture");
        println!(
            "\nslowest capture: {} on {} ({:.1} ms)",
            rec.kernel,
            rec.machine,
            rec.wall_ns as f64 / 1e6
        );
        for (span, ns) in &detail.spans {
            println!("  span {span:<10} {:>10.1} us", *ns as f64 / 1000.0);
        }
        for (counter, v) in detail.counters.iter().take(4) {
            println!("  {counter:<15} {v}");
        }
    }

    // 3. The rolling window: tick once more and diff against the boot
    //    baseline for whole-run rates and percentiles. `grip-serve`
    //    does this on a background sampler thread; `{"cmd":"stats"}`
    //    serves the same object over the wire.
    grip::obs::window::global().tick_registry(grip::obs::global());
    let win = grip::obs::window::global().stats_registry(grip::obs::global());
    println!("\nwindow: {:.2}s, {} samples", win.elapsed_s, win.samples);
    for name in ["grip_request_wall_ns", "grip_queue_wait_ns"] {
        if let Some(h) = win.histograms.iter().find(|(n, _)| n == name) {
            println!(
                "  {name:<22} count {:>3}  p50 ~{:>9.1} us  p99 ~{:>11.1} us",
                h.1.count,
                h.1.p50 as f64 / 1000.0,
                h.1.p99 as f64 / 1000.0,
            );
        }
    }

    // 4. Queue metrics live in the same registry the Prometheus
    //    exposition serves: per-shard depth gauges drained back to
    //    zero, and the queue-wait histogram saw every job.
    let reg = grip::obs::global();
    println!(
        "  queue depth now {} (drained), waits recorded {}",
        reg.gauge("grip_queue_depth").get(),
        reg.histogram("grip_queue_wait_ns").count(),
    );
}
