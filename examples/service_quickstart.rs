//! Drive the scheduling service end to end: build a [`Service`], submit a
//! batch across machines, read the verified measurements, then watch the
//! content-addressed caches absorb a repeat of the same work.
//!
//! Run with: `cargo run --release --example service_quickstart`

use grip::service::{CacheStatus, MachineSpec, ScheduleRequest, Service, ServiceConfig};

fn main() {
    // A service with default sizing: one worker shard per core (max 8),
    // per-shard DDG + schedule caches.
    let service = Service::new(ServiceConfig::default());
    println!("service up: {} shards\n", service.shards());

    // One batch: three kernels × three machines at trip count 64.
    let reqs: Vec<ScheduleRequest> = ["LL1", "LL5", "LL12"]
        .iter()
        .flat_map(|k| {
            ["uniform4", "clustered", "epic8"]
                .iter()
                .map(|m| ScheduleRequest::new(k, 64, MachineSpec::Preset(m.to_string())))
        })
        .collect();

    println!(
        "{:<6} {:<10} {:>5} {:>9} {:>9} {:>8} {:>8}  cache",
        "loop", "machine", "rows", "seq cyc", "sched cyc", "speedup", "wall us"
    );
    let responses = service.submit_batch(reqs.clone());
    for r in &responses {
        assert!(r.ok, "{}: {:?}", r.kernel, r.error);
        assert!(r.verified, "every schedule is VM-verified against the sequential program");
        assert_eq!(r.sched_stalls, 0, "schedules are stall-free by construction");
        println!(
            "{:<6} {:<10} {:>5} {:>9} {:>9} {:>8.2} {:>8.1}  {}",
            r.kernel,
            r.machine,
            r.schedule_rows,
            r.seq_cycles,
            r.sched_cycles,
            r.speedup,
            r.wall_ns as f64 / 1000.0,
            r.cache.as_str(),
        );
    }

    // The same batch again: served from the schedule cache, bit-identical.
    let again = service.submit_batch(reqs);
    println!();
    for (cold, hot) in responses.iter().zip(&again) {
        assert_eq!(hot.cache, CacheStatus::Hit);
        assert!(hot.bits_eq(cold), "cache hits are bit-identical to cold runs");
        println!(
            "{:<6} {:<10} repeat: {} in {:.1} us (cold took {:.1} us)",
            hot.kernel,
            hot.machine,
            hot.cache.as_str(),
            hot.wall_ns as f64 / 1000.0,
            cold.wall_ns as f64 / 1000.0
        );
    }

    let stats = service.stats();
    println!("\nservice stats: {}", stats.to_json().line());
}
